//! Runtime-dispatched SIMD microkernels for the pointwise layer.
//!
//! The paper's per-core throughput assumes wide-vector arithmetic
//! (its many-core results lean on Xeon-Phi-class SIMD); this crate is
//! the workspace's single place where vector instructions live. Every
//! kernel comes in at least two bodies:
//!
//! * an **AVX2+FMA** body (`x86_64` only), selected at runtime via
//!   `is_x86_feature_detected!`,
//! * an **AVX-512F** body for the shuffle-bound complex kernels
//!   (selected when `avx512f` is detected on top of AVX2+FMA; the
//!   streaming real kernels reuse the AVX2 bodies there), and
//! * a portable **scalar twin** ([`scalar`]) that compiles everywhere
//!   and is the reference every vector body is pinned against.
//!
//! # Exactness policy
//!
//! Vector bodies are written to be **bitwise identical** to their
//! scalar twins per element:
//!
//! * add/sub/mul-only kernels (complex multiply, butterfly algebra)
//!   perform the *same IEEE operations in the same order* as the twin
//!   — the only re-association ever used is `x + y = y + x`, which is
//!   exact;
//! * FMA kernels ([`axpy_f`], [`sub_scaled_f`], [`fma_acc_f`]) fuse in
//!   **both** bodies: the twin uses [`f32::mul_add`], which is the
//!   same correctly-rounded operation as the hardware `vfmadd`.
//!
//! Because results never depend on which body ran, on lane position,
//! or on tail handling, all of the workspace's bit-determinism
//! guarantees (thread-count invariance, pooled-vs-raw parity,
//! batched-vs-single line transforms) hold *per code path and across
//! code paths*. The differential tests in this crate and in
//! `znn-tensor`/`znn-fft`/`rustfft` assert the bitwise pin; callers
//! that re-associate on their own (none today) must document an ulp
//! bound instead.
//!
//! # Dispatch
//!
//! [`isa`] detects once (first call) and caches. Setting the
//! environment variable `ZNN_FORCE_SCALAR` to anything but `0`/empty
//! *before first use* forces the scalar twins process-wide — CI runs
//! the whole test suite a second time this way so the fallback can
//! never rot. Benchmarks that need both paths in one process use
//! plan-level switches instead (`FftPlanner::plan_fft_scalar`,
//! `FftEngine::with_scalar_kernels`) plus the public [`scalar`]
//! module, not the env override.
//!
//! ```
//! use num_complex::Complex;
//! let mut d = vec![Complex::new(1.0f32, 2.0); 37];
//! let s = vec![Complex::new(0.5f32, -1.0); 37];
//! let mut d2 = d.clone();
//! znn_simd::mul_assign_c(&mut d, &s);          // dispatched
//! znn_simd::scalar::mul_assign_c(&mut d2, &s); // twin
//! assert_eq!(d, d2);                           // bitwise, always
//! ```

use num_complex::Complex;
use std::sync::OnceLock;

pub mod scalar;

#[cfg(target_arch = "x86_64")]
mod avx2;
#[cfg(target_arch = "x86_64")]
mod avx512;
#[cfg(target_arch = "x86_64")]
pub mod x8;

/// The instruction set the dispatched kernels run on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Isa {
    /// AVX-512F complex kernels over the AVX2+FMA base (x86_64,
    /// detected at runtime).
    Avx512F,
    /// AVX2 + FMA vector bodies (x86_64, detected at runtime).
    Avx2Fma,
    /// The portable scalar twins.
    Scalar,
}

/// `(isa, forced)` — detected once, cached for the process lifetime.
static CONFIG: OnceLock<(Isa, bool)> = OnceLock::new();

/// Pure detection policy: what [`isa`] would return given the
/// `ZNN_FORCE_SCALAR` decision. Exposed so tests can pin the policy
/// without mutating process-global state.
pub fn detect(force_scalar: bool) -> Isa {
    if force_scalar {
        return Isa::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("fma")
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                return Isa::Avx512F;
            }
            return Isa::Avx2Fma;
        }
    }
    Isa::Scalar
}

fn config() -> (Isa, bool) {
    *CONFIG.get_or_init(|| {
        let forced = std::env::var_os("ZNN_FORCE_SCALAR")
            .is_some_and(|v| !v.is_empty() && v != "0");
        (detect(forced), forced)
    })
}

/// The instruction set every dispatched kernel in this crate uses.
/// Detected on first call (hardware probe + `ZNN_FORCE_SCALAR`), then
/// fixed for the process lifetime.
pub fn isa() -> Isa {
    config().0
}

/// `true` when `ZNN_FORCE_SCALAR` pinned the process to the scalar
/// twins regardless of hardware.
pub fn forced_scalar() -> bool {
    config().1
}

/// Stable name of the active ISA for logs and bench JSON.
pub fn isa_name() -> &'static str {
    match isa() {
        Isa::Avx512F => "avx512f",
        Isa::Avx2Fma => "avx2_fma",
        Isa::Scalar => "scalar",
    }
}

/// Views a complex slice as its interleaved `re, im` float storage.
pub fn complex_as_floats(s: &[Complex<f32>]) -> &[f32] {
    // SAFETY: Complex<f32> is #[repr(C)] { re: f32, im: f32 } — size 8,
    // align 4 — so the same allocation is exactly 2·len valid f32s.
    unsafe { std::slice::from_raw_parts(s.as_ptr().cast::<f32>(), s.len() * 2) }
}

/// Mutable variant of [`complex_as_floats`].
pub fn complex_as_floats_mut(s: &mut [Complex<f32>]) -> &mut [f32] {
    // SAFETY: as in `complex_as_floats`.
    unsafe { std::slice::from_raw_parts_mut(s.as_mut_ptr().cast::<f32>(), s.len() * 2) }
}

macro_rules! dispatched {
    ($name:ident, ($($arg:ident: $ty:ty),*), $doc:expr) => {
        #[doc = $doc]
        ///
        /// Dispatched: the widest detected vector body (AVX-512F or
        /// AVX2+FMA), else the scalar twin in [`scalar`]. All bodies
        /// produce bitwise-identical results (see the crate docs for
        /// the exactness policy).
        pub fn $name($($arg: $ty),*) {
            #[cfg(target_arch = "x86_64")]
            {
                match isa() {
                    // SAFETY: the matching features were detected at
                    // runtime (Avx512F implies AVX2+FMA were too).
                    Isa::Avx512F => {
                        unsafe { avx512::$name($($arg),*) };
                        return;
                    }
                    Isa::Avx2Fma => {
                        unsafe { avx2::$name($($arg),*) };
                        return;
                    }
                    Isa::Scalar => {}
                }
            }
            scalar::$name($($arg),*);
        }
    };
}

dispatched!(
    add_assign_f,
    (dst: &mut [f32], src: &[f32]),
    "`dst[i] += src[i]` (panics on length mismatch)."
);
dispatched!(
    mul_assign_f,
    (dst: &mut [f32], src: &[f32]),
    "`dst[i] *= src[i]` (panics on length mismatch)."
);
dispatched!(
    scale_f,
    (dst: &mut [f32], s: f32),
    "`dst[i] *= s`."
);
dispatched!(
    axpy_f,
    (dst: &mut [f32], a: f32, src: &[f32]),
    "`dst[i] = fma(dst[i], a, src[i])` — the momentum-SGD axpy, fused \
     in both bodies."
);
dispatched!(
    sub_scaled_f,
    (dst: &mut [f32], eta: f32, src: &[f32]),
    "`dst[i] = fma(-eta, src[i], dst[i])` — the SGD parameter step, \
     fused in both bodies."
);
dispatched!(
    fma_acc_f,
    (dst: &mut [f32], w: f32, src: &[f32]),
    "`dst[i] = fma(w, src[i], dst[i])` — the direct convolver's \
     contiguous tap accumulation, fused in both bodies."
);
dispatched!(
    add_assign_c,
    (dst: &mut [Complex<f32>], src: &[Complex<f32>]),
    "`dst[i] += src[i]` for complex slices (frequency-domain \
     accumulation)."
);
dispatched!(
    mul_assign_c,
    (dst: &mut [Complex<f32>], src: &[Complex<f32>]),
    "`dst[i] *= src[i]` — the spectrum pointwise product of §IV."
);
dispatched!(
    mul_add_assign_c,
    (dst: &mut [Complex<f32>], a: &[Complex<f32>], b: &[Complex<f32>]),
    "`dst[i] += a[i]·b[i]` — complex multiply-accumulate."
);
dispatched!(
    conj_mul_assign_c,
    (dst: &mut [Complex<f32>], g: &[Complex<f32>]),
    "`dst[i] *= conj(g[i])` — the correlation-spectrum kernel."
);
dispatched!(
    conj_mul_add_assign_c,
    (acc: &mut [Complex<f32>], x: &[Complex<f32>], g: &[Complex<f32>]),
    "`acc[i] += x[i]·conj(g[i])` — accumulating correlation spectra."
);
dispatched!(
    bias_add_f,
    (dst: &mut [f32], bias: f32),
    "`dst[i] += bias` — the `Linear` transfer forward."
);
dispatched!(
    bias_relu_f,
    (dst: &mut [f32], bias: f32),
    "`dst[i] = relu(dst[i] + bias)` where `relu(t)` is `t` for \
     `t > 0`, else `0.0`."
);
dispatched!(
    bias_leaky_relu_f,
    (dst: &mut [f32], bias: f32, a: f32),
    "`dst[i] = t > 0 ? t : a·t` for `t = dst[i] + bias`."
);
dispatched!(
    relu_deriv_mul_f,
    (dst: &mut [f32], y: &[f32]),
    "`dst[i] *= (y[i] > 0 ? 1.0 : 0.0)` — the ReLU Jacobian applied \
     to a backward image."
);
dispatched!(
    leaky_relu_deriv_mul_f,
    (dst: &mut [f32], y: &[f32], a: f32),
    "`dst[i] *= (y[i] > 0 ? 1.0 : a)`."
);
dispatched!(
    logistic_deriv_mul_f,
    (dst: &mut [f32], y: &[f32]),
    "`dst[i] *= y[i]·(1 − y[i])` — the logistic Jacobian from the \
     forward output."
);
dispatched!(
    tanh_deriv_mul_f,
    (dst: &mut [f32], y: &[f32]),
    "`dst[i] *= 1 − y[i]²` — the tanh Jacobian from the forward \
     output."
);

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_f(seed: u64, n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let mut z = seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z ^= z >> 31;
                ((z >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
            })
            .collect()
    }

    fn rand_c(seed: u64, n: usize) -> Vec<Complex<f32>> {
        let re = rand_f(seed, n);
        let im = rand_f(seed ^ 0xABCD, n);
        re.into_iter().zip(im).map(|(r, i)| Complex::new(r, i)).collect()
    }

    /// Lengths that exercise the empty, all-tail, one-vector and
    /// vector+tail shapes of every kernel.
    const LENS: [usize; 7] = [0, 1, 3, 4, 8, 33, 67];

    #[test]
    fn detect_policy() {
        assert_eq!(detect(true), Isa::Scalar);
        // un-forced detection never panics and is stable
        assert_eq!(detect(false), detect(false));
        assert_eq!(isa(), isa());
    }

    #[test]
    fn real_kernels_match_scalar_twins_bitwise() {
        for &n in &LENS {
            let src = rand_f(1, n);
            for (name, disp, twin) in [
                (
                    "add_assign_f",
                    add_assign_f as fn(&mut [f32], &[f32]),
                    scalar::add_assign_f as fn(&mut [f32], &[f32]),
                ),
                ("mul_assign_f", mul_assign_f, scalar::mul_assign_f),
            ] {
                let mut a = rand_f(2, n);
                let mut b = a.clone();
                disp(&mut a, &src);
                twin(&mut b, &src);
                assert_eq!(a, b, "{name} n={n}");
            }
            let mut a = rand_f(3, n);
            let mut b = a.clone();
            scale_f(&mut a, 1.37);
            scalar::scale_f(&mut b, 1.37);
            assert_eq!(a, b, "scale_f n={n}");
            for (name, disp, twin) in [
                (
                    "axpy_f",
                    axpy_f as fn(&mut [f32], f32, &[f32]),
                    scalar::axpy_f as fn(&mut [f32], f32, &[f32]),
                ),
                ("sub_scaled_f", sub_scaled_f, scalar::sub_scaled_f),
                ("fma_acc_f", fma_acc_f, scalar::fma_acc_f),
            ] {
                let mut a = rand_f(4, n);
                let mut b = a.clone();
                disp(&mut a, 0.731, &src);
                twin(&mut b, 0.731, &src);
                assert_eq!(a, b, "{name} n={n}");
            }
        }
    }

    #[test]
    fn complex_kernels_match_scalar_twins_bitwise() {
        for &n in &LENS {
            let x = rand_c(5, n);
            let g = rand_c(6, n);
            for (name, disp, twin) in [
                (
                    "add_assign_c",
                    add_assign_c as fn(&mut [Complex<f32>], &[Complex<f32>]),
                    scalar::add_assign_c as fn(&mut [Complex<f32>], &[Complex<f32>]),
                ),
                ("mul_assign_c", mul_assign_c, scalar::mul_assign_c),
                ("conj_mul_assign_c", conj_mul_assign_c, scalar::conj_mul_assign_c),
            ] {
                let mut a = rand_c(7, n);
                let mut b = a.clone();
                disp(&mut a, &g);
                twin(&mut b, &g);
                assert_eq!(a, b, "{name} n={n}");
            }
            for (name, disp, twin) in [
                (
                    "mul_add_assign_c",
                    mul_add_assign_c
                        as fn(&mut [Complex<f32>], &[Complex<f32>], &[Complex<f32>]),
                    scalar::mul_add_assign_c
                        as fn(&mut [Complex<f32>], &[Complex<f32>], &[Complex<f32>]),
                ),
                (
                    "conj_mul_add_assign_c",
                    conj_mul_add_assign_c,
                    scalar::conj_mul_add_assign_c,
                ),
            ] {
                let mut a = rand_c(8, n);
                let mut b = a.clone();
                disp(&mut a, &x, &g);
                twin(&mut b, &x, &g);
                assert_eq!(a, b, "{name} n={n}");
            }
        }
    }

    #[test]
    fn transfer_kernels_match_scalar_twins_bitwise() {
        for &n in &LENS {
            let y = rand_f(9, n);
            for (name, disp, twin) in [
                (
                    "bias_add_f",
                    bias_add_f as fn(&mut [f32], f32),
                    scalar::bias_add_f as fn(&mut [f32], f32),
                ),
                ("bias_relu_f", bias_relu_f, scalar::bias_relu_f),
            ] {
                let mut a = rand_f(10, n);
                let mut b = a.clone();
                disp(&mut a, 0.13);
                twin(&mut b, 0.13);
                assert_eq!(a, b, "{name} n={n}");
            }
            let mut a = rand_f(11, n);
            let mut b = a.clone();
            bias_leaky_relu_f(&mut a, 0.13, 0.01);
            scalar::bias_leaky_relu_f(&mut b, 0.13, 0.01);
            assert_eq!(a, b, "bias_leaky_relu_f n={n}");
            for (name, disp, twin) in [
                (
                    "relu_deriv_mul_f",
                    relu_deriv_mul_f as fn(&mut [f32], &[f32]),
                    scalar::relu_deriv_mul_f as fn(&mut [f32], &[f32]),
                ),
                ("logistic_deriv_mul_f", logistic_deriv_mul_f, scalar::logistic_deriv_mul_f),
                ("tanh_deriv_mul_f", tanh_deriv_mul_f, scalar::tanh_deriv_mul_f),
            ] {
                let mut a = rand_f(12, n);
                let mut b = a.clone();
                disp(&mut a, &y);
                twin(&mut b, &y);
                assert_eq!(a, b, "{name} n={n}");
            }
            let mut a = rand_f(13, n);
            let mut b = a.clone();
            leaky_relu_deriv_mul_f(&mut a, &y, 0.01);
            scalar::leaky_relu_deriv_mul_f(&mut b, &y, 0.01);
            assert_eq!(a, b, "leaky_relu_deriv_mul_f n={n}");
        }
    }

    #[test]
    fn float_view_round_trips() {
        let mut v = rand_c(14, 5);
        let orig = v.clone();
        let f = complex_as_floats_mut(&mut v);
        assert_eq!(f.len(), 10);
        assert_eq!(f[2], orig[1].re);
        assert_eq!(f[3], orig[1].im);
        f[0] += 1.0;
        assert_eq!(v[0].re, orig[0].re + 1.0);
        assert_eq!(complex_as_floats(&v).len(), 10);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn transpose8x8_is_the_transpose() {
        if isa() == Isa::Scalar {
            return; // no AVX2 on this host (or forced scalar)
        }
        let mut m = [[0.0f32; 8]; 8];
        for (i, row) in m.iter_mut().enumerate() {
            for (j, v) in row.iter_mut().enumerate() {
                *v = (i * 8 + j) as f32;
            }
        }
        let mut out = [[0.0f32; 8]; 8];
        // SAFETY: AVX2 detected above.
        let rows = std::array::from_fn(|i| unsafe { x8::F32x8::load(m[i].as_ptr()) });
        unsafe {
            let t = x8::transpose8x8(rows);
            for (i, v) in t.iter().enumerate() {
                v.store(out[i].as_mut_ptr());
            }
        }
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(out[i][j], m[j][i], "({i},{j})");
            }
        }
    }
}
