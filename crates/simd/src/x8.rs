//! Thin 8-lane f32 vector wrappers over AVX2 intrinsics.
//!
//! These exist so the batched Stockham butterflies (in the vendored
//! rustfft) and the pointwise kernels in this crate share one audited
//! set of lane operations. Everything here is `unsafe` — the caller
//! must have verified AVX2 (+FMA for [`F32x8::fmadd`]) at runtime —
//! and `#[inline(always)]` so the ops fold into the caller's
//! `#[target_feature]` region instead of crossing an ABI boundary.
//!
//! Arithmetic maps 1:1 onto single IEEE operations per lane, so any
//! sequence of these ops is bitwise-equal to the same sequence of
//! scalar ops per lane. [`CF32x8::mul`] performs the complex product
//! in the vendored `num-complex` operation order, keeping twiddle
//! multiplication bitwise-identical to the scalar Stockham stages.

#![allow(clippy::missing_safety_doc)] // every fn: see module docs — caller guarantees AVX2(+FMA)

use std::arch::x86_64::*;

/// 8 f32 lanes in a `__m256`.
#[derive(Clone, Copy, Debug)]
pub struct F32x8(pub __m256);

impl F32x8 {
    /// All lanes = `v`. Safety: AVX2 (see module docs).
    #[inline(always)]
    pub unsafe fn splat(v: f32) -> Self {
        F32x8(_mm256_set1_ps(v))
    }

    /// All lanes zero. Safety: AVX2.
    #[inline(always)]
    pub unsafe fn zero() -> Self {
        F32x8(_mm256_setzero_ps())
    }

    /// Unaligned load of 8 consecutive f32s. Safety: AVX2, `ptr`
    /// readable for 8 f32s.
    #[inline(always)]
    pub unsafe fn load(ptr: *const f32) -> Self {
        F32x8(_mm256_loadu_ps(ptr))
    }

    /// Unaligned store of 8 consecutive f32s. Safety: AVX2, `ptr`
    /// writable for 8 f32s.
    #[inline(always)]
    pub unsafe fn store(self, ptr: *mut f32) {
        _mm256_storeu_ps(ptr, self.0)
    }

    /// Lanewise `self + b`. Safety: AVX2.
    #[inline(always)]
    pub unsafe fn add(self, b: Self) -> Self {
        F32x8(_mm256_add_ps(self.0, b.0))
    }

    /// Lanewise `self − b`. Safety: AVX2.
    #[inline(always)]
    pub unsafe fn sub(self, b: Self) -> Self {
        F32x8(_mm256_sub_ps(self.0, b.0))
    }

    /// Lanewise `self · b`. Safety: AVX2.
    #[inline(always)]
    pub unsafe fn mul(self, b: Self) -> Self {
        F32x8(_mm256_mul_ps(self.0, b.0))
    }

    /// Lanewise fused `self · b + c` (single rounding — matches
    /// [`f32::mul_add`]). Safety: AVX2 **and FMA**.
    #[inline(always)]
    pub unsafe fn fmadd(self, b: Self, c: Self) -> Self {
        F32x8(_mm256_fmadd_ps(self.0, b.0, c.0))
    }
}

/// 8 complex f32 values in struct-of-arrays form: one vector of real
/// parts, one of imaginary parts.
#[derive(Clone, Copy, Debug)]
pub struct CF32x8 {
    /// Real parts of the 8 lanes.
    pub re: F32x8,
    /// Imaginary parts of the 8 lanes.
    pub im: F32x8,
}

impl CF32x8 {
    /// Lanewise complex add. Safety: AVX2.
    #[inline(always)]
    pub unsafe fn add(self, b: Self) -> Self {
        CF32x8 { re: self.re.add(b.re), im: self.im.add(b.im) }
    }

    /// Lanewise complex subtract. Safety: AVX2.
    #[inline(always)]
    pub unsafe fn sub(self, b: Self) -> Self {
        CF32x8 { re: self.re.sub(b.re), im: self.im.sub(b.im) }
    }

    /// Lanewise complex product in the scalar reference order:
    /// `(a.re·b.re − a.im·b.im, a.re·b.im + a.im·b.re)` — four
    /// separate products, one sub, one add; no fusing. Bitwise equal
    /// to the vendored `num-complex` `Mul`. Safety: AVX2.
    #[inline(always)]
    pub unsafe fn mul(self, b: Self) -> Self {
        CF32x8 {
            re: self.re.mul(b.re).sub(self.im.mul(b.im)),
            im: self.re.mul(b.im).add(self.im.mul(b.re)),
        }
    }
}

/// In-register 8×8 transpose: `out[i][j] = m[j][i]`. An involution —
/// the same routine converts row-major lines to struct-of-arrays
/// columns and back. Safety: AVX2.
#[inline(always)]
pub unsafe fn transpose8x8(m: [F32x8; 8]) -> [F32x8; 8] {
    let t0 = _mm256_unpacklo_ps(m[0].0, m[1].0);
    let t1 = _mm256_unpackhi_ps(m[0].0, m[1].0);
    let t2 = _mm256_unpacklo_ps(m[2].0, m[3].0);
    let t3 = _mm256_unpackhi_ps(m[2].0, m[3].0);
    let t4 = _mm256_unpacklo_ps(m[4].0, m[5].0);
    let t5 = _mm256_unpackhi_ps(m[4].0, m[5].0);
    let t6 = _mm256_unpacklo_ps(m[6].0, m[7].0);
    let t7 = _mm256_unpackhi_ps(m[6].0, m[7].0);

    let s0 = _mm256_shuffle_ps(t0, t2, 0x44);
    let s1 = _mm256_shuffle_ps(t0, t2, 0xEE);
    let s2 = _mm256_shuffle_ps(t1, t3, 0x44);
    let s3 = _mm256_shuffle_ps(t1, t3, 0xEE);
    let s4 = _mm256_shuffle_ps(t4, t6, 0x44);
    let s5 = _mm256_shuffle_ps(t4, t6, 0xEE);
    let s6 = _mm256_shuffle_ps(t5, t7, 0x44);
    let s7 = _mm256_shuffle_ps(t5, t7, 0xEE);

    [
        F32x8(_mm256_permute2f128_ps(s0, s4, 0x20)),
        F32x8(_mm256_permute2f128_ps(s1, s5, 0x20)),
        F32x8(_mm256_permute2f128_ps(s2, s6, 0x20)),
        F32x8(_mm256_permute2f128_ps(s3, s7, 0x20)),
        F32x8(_mm256_permute2f128_ps(s0, s4, 0x31)),
        F32x8(_mm256_permute2f128_ps(s1, s5, 0x31)),
        F32x8(_mm256_permute2f128_ps(s2, s6, 0x31)),
        F32x8(_mm256_permute2f128_ps(s3, s7, 0x31)),
    ]
}
