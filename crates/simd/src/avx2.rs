//! AVX2+FMA bodies for the dispatched kernels.
//!
//! Every function here is `#[target_feature(enable = "avx2,fma")]`
//! and is only reachable through the dispatch wrappers in `lib.rs`,
//! which verified both features at runtime. Tails (`len % lanes`)
//! fall through to the scalar twins on subslices, which is safe
//! because every kernel is elementwise — results never depend on
//! where the vector/tail boundary lands.
//!
//! Complex kernels work on the interleaved `re, im` storage directly:
//! one `__m256` holds 4 complexes. The complex product uses the
//! moveldup/movehdup/addsub sequence whose per-element operations are
//! the vendored `num-complex` product with the imaginary-part add
//! commuted — bitwise identical (IEEE add commutes).

use crate::{complex_as_floats, complex_as_floats_mut};
use num_complex::Complex;
use std::arch::x86_64::*;

/// `(a0·b0, a1·b1, …)` complex product of 4 interleaved complexes.
#[inline(always)]
unsafe fn cmul(a: __m256, b: __m256) -> __m256 {
    let br = _mm256_moveldup_ps(b); // (b.re, b.re) per complex
    let bi = _mm256_movehdup_ps(b); // (b.im, b.im) per complex
    let t1 = _mm256_mul_ps(a, br); // (a.re·b.re, a.im·b.re)
    let sw = _mm256_permute_ps(a, 0xB1); // (a.im, a.re)
    let t2 = _mm256_mul_ps(sw, bi); // (a.im·b.im, a.re·b.im)
    // even lanes t1−t2 = re, odd lanes t1+t2 = im
    _mm256_addsub_ps(t1, t2)
}

/// Negates the imaginary lanes of 4 interleaved complexes (`conj`).
#[inline(always)]
unsafe fn conj4(v: __m256) -> __m256 {
    let m = _mm256_setr_ps(0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0);
    _mm256_xor_ps(v, m)
}

macro_rules! real_loop {
    ($dst:ident, $main:ident, $i:ident, $body:block) => {
        let n = $dst.len();
        let $main = n - n % 8;
        let mut $i = 0;
        while $i < $main {
            $body
            $i += 8;
        }
    };
}

#[target_feature(enable = "avx2,fma")]
pub unsafe fn add_assign_f(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len());
    let (dp, sp) = (dst.as_mut_ptr(), src.as_ptr());
    real_loop!(dst, main, i, {
        let d = _mm256_loadu_ps(dp.add(i));
        let s = _mm256_loadu_ps(sp.add(i));
        _mm256_storeu_ps(dp.add(i), _mm256_add_ps(d, s));
    });
    crate::scalar::add_assign_f(&mut dst[main..], &src[main..]);
}

#[target_feature(enable = "avx2,fma")]
pub unsafe fn mul_assign_f(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len());
    let (dp, sp) = (dst.as_mut_ptr(), src.as_ptr());
    real_loop!(dst, main, i, {
        let d = _mm256_loadu_ps(dp.add(i));
        let s = _mm256_loadu_ps(sp.add(i));
        _mm256_storeu_ps(dp.add(i), _mm256_mul_ps(d, s));
    });
    crate::scalar::mul_assign_f(&mut dst[main..], &src[main..]);
}

#[target_feature(enable = "avx2,fma")]
pub unsafe fn scale_f(dst: &mut [f32], s: f32) {
    let dp = dst.as_mut_ptr();
    let sv = _mm256_set1_ps(s);
    real_loop!(dst, main, i, {
        let d = _mm256_loadu_ps(dp.add(i));
        _mm256_storeu_ps(dp.add(i), _mm256_mul_ps(d, sv));
    });
    crate::scalar::scale_f(&mut dst[main..], s);
}

#[target_feature(enable = "avx2,fma")]
pub unsafe fn axpy_f(dst: &mut [f32], a: f32, src: &[f32]) {
    assert_eq!(dst.len(), src.len());
    let (dp, sp) = (dst.as_mut_ptr(), src.as_ptr());
    let av = _mm256_set1_ps(a);
    real_loop!(dst, main, i, {
        let d = _mm256_loadu_ps(dp.add(i));
        let s = _mm256_loadu_ps(sp.add(i));
        _mm256_storeu_ps(dp.add(i), _mm256_fmadd_ps(d, av, s));
    });
    crate::scalar::axpy_f(&mut dst[main..], a, &src[main..]);
}

#[target_feature(enable = "avx2,fma")]
pub unsafe fn sub_scaled_f(dst: &mut [f32], eta: f32, src: &[f32]) {
    assert_eq!(dst.len(), src.len());
    let (dp, sp) = (dst.as_mut_ptr(), src.as_ptr());
    let nv = _mm256_set1_ps(-eta);
    real_loop!(dst, main, i, {
        let d = _mm256_loadu_ps(dp.add(i));
        let s = _mm256_loadu_ps(sp.add(i));
        _mm256_storeu_ps(dp.add(i), _mm256_fmadd_ps(nv, s, d));
    });
    crate::scalar::sub_scaled_f(&mut dst[main..], eta, &src[main..]);
}

#[target_feature(enable = "avx2,fma")]
pub unsafe fn fma_acc_f(dst: &mut [f32], w: f32, src: &[f32]) {
    assert_eq!(dst.len(), src.len());
    let (dp, sp) = (dst.as_mut_ptr(), src.as_ptr());
    let wv = _mm256_set1_ps(w);
    real_loop!(dst, main, i, {
        let d = _mm256_loadu_ps(dp.add(i));
        let s = _mm256_loadu_ps(sp.add(i));
        _mm256_storeu_ps(dp.add(i), _mm256_fmadd_ps(wv, s, d));
    });
    crate::scalar::fma_acc_f(&mut dst[main..], w, &src[main..]);
}

#[target_feature(enable = "avx2,fma")]
pub unsafe fn add_assign_c(dst: &mut [Complex<f32>], src: &[Complex<f32>]) {
    assert_eq!(dst.len(), src.len());
    // complex add is lanewise on the interleaved floats
    add_assign_f(complex_as_floats_mut(dst), complex_as_floats(src));
}

#[target_feature(enable = "avx2,fma")]
pub unsafe fn mul_assign_c(dst: &mut [Complex<f32>], src: &[Complex<f32>]) {
    assert_eq!(dst.len(), src.len());
    let n = dst.len();
    let main = n - n % 4;
    let dp = complex_as_floats_mut(dst).as_mut_ptr();
    let sp = complex_as_floats(src).as_ptr();
    let mut i = 0;
    // 4x unrolled (16 complexes per iteration) for ILP — each cmul is
    // a ~13-cycle dependency chain of cheap ops, so four independent
    // chains keep the shuffle and multiply ports saturated. Unrolling
    // reorders nothing within an element: still lane-exact.
    let main16 = (n - n % 16) * 2;
    while i < main16 {
        let d0 = _mm256_loadu_ps(dp.add(i));
        let d1 = _mm256_loadu_ps(dp.add(i + 8));
        let d2 = _mm256_loadu_ps(dp.add(i + 16));
        let d3 = _mm256_loadu_ps(dp.add(i + 24));
        let s0 = _mm256_loadu_ps(sp.add(i));
        let s1 = _mm256_loadu_ps(sp.add(i + 8));
        let s2 = _mm256_loadu_ps(sp.add(i + 16));
        let s3 = _mm256_loadu_ps(sp.add(i + 24));
        _mm256_storeu_ps(dp.add(i), cmul(d0, s0));
        _mm256_storeu_ps(dp.add(i + 8), cmul(d1, s1));
        _mm256_storeu_ps(dp.add(i + 16), cmul(d2, s2));
        _mm256_storeu_ps(dp.add(i + 24), cmul(d3, s3));
        i += 32;
    }
    while i < main * 2 {
        let d = _mm256_loadu_ps(dp.add(i));
        let s = _mm256_loadu_ps(sp.add(i));
        _mm256_storeu_ps(dp.add(i), cmul(d, s));
        i += 8;
    }
    crate::scalar::mul_assign_c(&mut dst[main..], &src[main..]);
}

#[target_feature(enable = "avx2,fma")]
pub unsafe fn mul_add_assign_c(
    dst: &mut [Complex<f32>],
    a: &[Complex<f32>],
    b: &[Complex<f32>],
) {
    assert_eq!(dst.len(), a.len());
    assert_eq!(dst.len(), b.len());
    let n = dst.len();
    let main = n - n % 4;
    let dp = complex_as_floats_mut(dst).as_mut_ptr();
    let ap = complex_as_floats(a).as_ptr();
    let bp = complex_as_floats(b).as_ptr();
    let mut i = 0;
    while i < main * 2 {
        let d = _mm256_loadu_ps(dp.add(i));
        let x = _mm256_loadu_ps(ap.add(i));
        let y = _mm256_loadu_ps(bp.add(i));
        _mm256_storeu_ps(dp.add(i), _mm256_add_ps(d, cmul(x, y)));
        i += 8;
    }
    crate::scalar::mul_add_assign_c(&mut dst[main..], &a[main..], &b[main..]);
}

#[target_feature(enable = "avx2,fma")]
pub unsafe fn conj_mul_assign_c(dst: &mut [Complex<f32>], g: &[Complex<f32>]) {
    assert_eq!(dst.len(), g.len());
    let n = dst.len();
    let main = n - n % 4;
    let dp = complex_as_floats_mut(dst).as_mut_ptr();
    let gp = complex_as_floats(g).as_ptr();
    let mut i = 0;
    while i < main * 2 {
        let d = _mm256_loadu_ps(dp.add(i));
        let s = conj4(_mm256_loadu_ps(gp.add(i)));
        _mm256_storeu_ps(dp.add(i), cmul(d, s));
        i += 8;
    }
    crate::scalar::conj_mul_assign_c(&mut dst[main..], &g[main..]);
}

#[target_feature(enable = "avx2,fma")]
pub unsafe fn conj_mul_add_assign_c(
    acc: &mut [Complex<f32>],
    x: &[Complex<f32>],
    g: &[Complex<f32>],
) {
    assert_eq!(acc.len(), x.len());
    assert_eq!(acc.len(), g.len());
    let n = acc.len();
    let main = n - n % 4;
    let ap = complex_as_floats_mut(acc).as_mut_ptr();
    let xp = complex_as_floats(x).as_ptr();
    let gp = complex_as_floats(g).as_ptr();
    let mut i = 0;
    // 4x unrolled like `mul_assign_c`: four independent
    // conj+cmul+add chains per iteration, no within-element reordering
    let main16 = (n - n % 16) * 2;
    while i < main16 {
        let a0 = _mm256_loadu_ps(ap.add(i));
        let a1 = _mm256_loadu_ps(ap.add(i + 8));
        let a2 = _mm256_loadu_ps(ap.add(i + 16));
        let a3 = _mm256_loadu_ps(ap.add(i + 24));
        let x0 = _mm256_loadu_ps(xp.add(i));
        let x1 = _mm256_loadu_ps(xp.add(i + 8));
        let x2 = _mm256_loadu_ps(xp.add(i + 16));
        let x3 = _mm256_loadu_ps(xp.add(i + 24));
        let g0 = conj4(_mm256_loadu_ps(gp.add(i)));
        let g1 = conj4(_mm256_loadu_ps(gp.add(i + 8)));
        let g2 = conj4(_mm256_loadu_ps(gp.add(i + 16)));
        let g3 = conj4(_mm256_loadu_ps(gp.add(i + 24)));
        _mm256_storeu_ps(ap.add(i), _mm256_add_ps(a0, cmul(x0, g0)));
        _mm256_storeu_ps(ap.add(i + 8), _mm256_add_ps(a1, cmul(x1, g1)));
        _mm256_storeu_ps(ap.add(i + 16), _mm256_add_ps(a2, cmul(x2, g2)));
        _mm256_storeu_ps(ap.add(i + 24), _mm256_add_ps(a3, cmul(x3, g3)));
        i += 32;
    }
    while i < main * 2 {
        let a = _mm256_loadu_ps(ap.add(i));
        let xv = _mm256_loadu_ps(xp.add(i));
        let gv = conj4(_mm256_loadu_ps(gp.add(i)));
        _mm256_storeu_ps(ap.add(i), _mm256_add_ps(a, cmul(xv, gv)));
        i += 8;
    }
    crate::scalar::conj_mul_add_assign_c(&mut acc[main..], &x[main..], &g[main..]);
}

#[target_feature(enable = "avx2,fma")]
pub unsafe fn bias_add_f(dst: &mut [f32], bias: f32) {
    let dp = dst.as_mut_ptr();
    let bv = _mm256_set1_ps(bias);
    real_loop!(dst, main, i, {
        let d = _mm256_loadu_ps(dp.add(i));
        _mm256_storeu_ps(dp.add(i), _mm256_add_ps(d, bv));
    });
    crate::scalar::bias_add_f(&mut dst[main..], bias);
}

#[target_feature(enable = "avx2,fma")]
pub unsafe fn bias_relu_f(dst: &mut [f32], bias: f32) {
    let dp = dst.as_mut_ptr();
    let bv = _mm256_set1_ps(bias);
    let zero = _mm256_setzero_ps();
    real_loop!(dst, main, i, {
        let t = _mm256_add_ps(_mm256_loadu_ps(dp.add(i)), bv);
        // t > 0 keeps t; else (incl. NaN, ±0) the AND yields +0.0 —
        // matching the scalar branch, which returns literal 0.0.
        let mask = _mm256_cmp_ps::<_CMP_GT_OQ>(t, zero);
        _mm256_storeu_ps(dp.add(i), _mm256_and_ps(t, mask));
    });
    crate::scalar::bias_relu_f(&mut dst[main..], bias);
}

#[target_feature(enable = "avx2,fma")]
pub unsafe fn bias_leaky_relu_f(dst: &mut [f32], bias: f32, a: f32) {
    let dp = dst.as_mut_ptr();
    let bv = _mm256_set1_ps(bias);
    let av = _mm256_set1_ps(a);
    let zero = _mm256_setzero_ps();
    real_loop!(dst, main, i, {
        let t = _mm256_add_ps(_mm256_loadu_ps(dp.add(i)), bv);
        let mask = _mm256_cmp_ps::<_CMP_GT_OQ>(t, zero);
        let leaked = _mm256_mul_ps(av, t);
        _mm256_storeu_ps(dp.add(i), _mm256_blendv_ps(leaked, t, mask));
    });
    crate::scalar::bias_leaky_relu_f(&mut dst[main..], bias, a);
}

#[target_feature(enable = "avx2,fma")]
pub unsafe fn relu_deriv_mul_f(dst: &mut [f32], y: &[f32]) {
    assert_eq!(dst.len(), y.len());
    let (dp, yp) = (dst.as_mut_ptr(), y.as_ptr());
    let zero = _mm256_setzero_ps();
    let one = _mm256_set1_ps(1.0);
    real_loop!(dst, main, i, {
        let yv = _mm256_loadu_ps(yp.add(i));
        // multiply by a selected 1.0/0.0 (not a bitmask AND) so the
        // scalar `*d *= factor` semantics for ±0/NaN in dst carry over
        let f = _mm256_blendv_ps(zero, one, _mm256_cmp_ps::<_CMP_GT_OQ>(yv, zero));
        let d = _mm256_loadu_ps(dp.add(i));
        _mm256_storeu_ps(dp.add(i), _mm256_mul_ps(d, f));
    });
    crate::scalar::relu_deriv_mul_f(&mut dst[main..], &y[main..]);
}

#[target_feature(enable = "avx2,fma")]
pub unsafe fn leaky_relu_deriv_mul_f(dst: &mut [f32], y: &[f32], a: f32) {
    assert_eq!(dst.len(), y.len());
    let (dp, yp) = (dst.as_mut_ptr(), y.as_ptr());
    let zero = _mm256_setzero_ps();
    let one = _mm256_set1_ps(1.0);
    let av = _mm256_set1_ps(a);
    real_loop!(dst, main, i, {
        let yv = _mm256_loadu_ps(yp.add(i));
        let f = _mm256_blendv_ps(av, one, _mm256_cmp_ps::<_CMP_GT_OQ>(yv, zero));
        let d = _mm256_loadu_ps(dp.add(i));
        _mm256_storeu_ps(dp.add(i), _mm256_mul_ps(d, f));
    });
    crate::scalar::leaky_relu_deriv_mul_f(&mut dst[main..], &y[main..], a);
}

#[target_feature(enable = "avx2,fma")]
pub unsafe fn logistic_deriv_mul_f(dst: &mut [f32], y: &[f32]) {
    assert_eq!(dst.len(), y.len());
    let (dp, yp) = (dst.as_mut_ptr(), y.as_ptr());
    let one = _mm256_set1_ps(1.0);
    real_loop!(dst, main, i, {
        let yv = _mm256_loadu_ps(yp.add(i));
        let f = _mm256_mul_ps(yv, _mm256_sub_ps(one, yv));
        let d = _mm256_loadu_ps(dp.add(i));
        _mm256_storeu_ps(dp.add(i), _mm256_mul_ps(d, f));
    });
    crate::scalar::logistic_deriv_mul_f(&mut dst[main..], &y[main..]);
}

#[target_feature(enable = "avx2,fma")]
pub unsafe fn tanh_deriv_mul_f(dst: &mut [f32], y: &[f32]) {
    assert_eq!(dst.len(), y.len());
    let (dp, yp) = (dst.as_mut_ptr(), y.as_ptr());
    let one = _mm256_set1_ps(1.0);
    real_loop!(dst, main, i, {
        let yv = _mm256_loadu_ps(yp.add(i));
        let f = _mm256_sub_ps(one, _mm256_mul_ps(yv, yv));
        let d = _mm256_loadu_ps(dp.add(i));
        _mm256_storeu_ps(dp.add(i), _mm256_mul_ps(d, f));
    });
    crate::scalar::tanh_deriv_mul_f(&mut dst[main..], &y[main..]);
}
