//! AVX-512F bodies for the complex pointwise kernels.
//!
//! Selected when `avx512f` is detected on top of AVX2+FMA. Only the
//! shuffle-bound complex kernels get native 512-bit bodies: on AVX2
//! the interleaved complex product costs three port-5 shuffles per
//! four complexes, which is the throughput wall on Intel server
//! cores — doubling the vector width halves the shuffle count per
//! element. The streaming real/transfer kernels are load/store-bound
//! already, so this module re-exports their AVX2 bodies unchanged.
//!
//! Exactness: AVX-512 has no `addsub`; the alternating-sign step is
//! done by flipping the sign bit of the even (real) lanes of the
//! subtrahend and adding — `x − y ≡ x + (−y)` is exact in IEEE-754,
//! so every kernel stays bitwise identical to its scalar twin (crate
//! policy). Tails (`len % 8`) fall through to the AVX2 bodies, which
//! handle their own scalar tails; elementwise kernels never depend on
//! where the vector/tail boundary lands.

use crate::{complex_as_floats, complex_as_floats_mut};
use num_complex::Complex;
use std::arch::x86_64::*;

pub use super::avx2::{
    add_assign_c, add_assign_f, axpy_f, bias_add_f, bias_leaky_relu_f, bias_relu_f, fma_acc_f,
    leaky_relu_deriv_mul_f, logistic_deriv_mul_f, mul_assign_f, relu_deriv_mul_f, scale_f,
    sub_scaled_f, tanh_deriv_mul_f,
};

/// Even (real) lanes `x − y`, odd (imag) lanes `x + y` — the `addsub`
/// AVX-512F doesn't have, decomposed as sign-flip + add (bitwise equal
/// to `_mm256_addsub_ps` per lane).
#[inline(always)]
unsafe fn addsub(x: __m512, y: __m512) -> __m512 {
    let m = _mm512_set1_epi64(0x0000_0000_8000_0000);
    let y = _mm512_castsi512_ps(_mm512_xor_si512(_mm512_castps_si512(y), m));
    _mm512_add_ps(x, y)
}

/// `(a0·b0, …, a7·b7)` complex product of 8 interleaved complexes —
/// the same moveldup/movehdup/swap sequence as the AVX2 body, twice
/// as wide.
#[inline(always)]
unsafe fn cmul(a: __m512, b: __m512) -> __m512 {
    let br = _mm512_moveldup_ps(b); // (b.re, b.re) per complex
    let bi = _mm512_movehdup_ps(b); // (b.im, b.im) per complex
    let t1 = _mm512_mul_ps(a, br); // (a.re·b.re, a.im·b.re)
    let sw = _mm512_permute_ps(a, 0xB1); // (a.im, a.re)
    let t2 = _mm512_mul_ps(sw, bi); // (a.im·b.im, a.re·b.im)
    addsub(t1, t2)
}

/// Negates the imaginary lanes of 8 interleaved complexes (`conj`).
#[inline(always)]
unsafe fn conj8(v: __m512) -> __m512 {
    let m = _mm512_set1_epi64(0x8000_0000_0000_0000u64 as i64);
    _mm512_castsi512_ps(_mm512_xor_si512(_mm512_castps_si512(v), m))
}

#[target_feature(enable = "avx512f,avx2,fma")]
pub unsafe fn mul_assign_c(dst: &mut [Complex<f32>], src: &[Complex<f32>]) {
    assert_eq!(dst.len(), src.len());
    let n = dst.len();
    let main = n - n % 8;
    let dp = complex_as_floats_mut(dst).as_mut_ptr();
    let sp = complex_as_floats(src).as_ptr();
    // 4x unrolled (32 complexes per iteration): four independent cmul
    // dependency chains in flight. Unrolling reorders nothing within
    // an element — still lane-exact.
    let main32 = (n - n % 32) * 2;
    let mut i = 0;
    while i < main32 {
        let d0 = _mm512_loadu_ps(dp.add(i));
        let d1 = _mm512_loadu_ps(dp.add(i + 16));
        let d2 = _mm512_loadu_ps(dp.add(i + 32));
        let d3 = _mm512_loadu_ps(dp.add(i + 48));
        let s0 = _mm512_loadu_ps(sp.add(i));
        let s1 = _mm512_loadu_ps(sp.add(i + 16));
        let s2 = _mm512_loadu_ps(sp.add(i + 32));
        let s3 = _mm512_loadu_ps(sp.add(i + 48));
        _mm512_storeu_ps(dp.add(i), cmul(d0, s0));
        _mm512_storeu_ps(dp.add(i + 16), cmul(d1, s1));
        _mm512_storeu_ps(dp.add(i + 32), cmul(d2, s2));
        _mm512_storeu_ps(dp.add(i + 48), cmul(d3, s3));
        i += 64;
    }
    while i < main * 2 {
        let d = _mm512_loadu_ps(dp.add(i));
        let s = _mm512_loadu_ps(sp.add(i));
        _mm512_storeu_ps(dp.add(i), cmul(d, s));
        i += 16;
    }
    super::avx2::mul_assign_c(&mut dst[main..], &src[main..]);
}

#[target_feature(enable = "avx512f,avx2,fma")]
pub unsafe fn mul_add_assign_c(
    dst: &mut [Complex<f32>],
    a: &[Complex<f32>],
    b: &[Complex<f32>],
) {
    assert_eq!(dst.len(), a.len());
    assert_eq!(dst.len(), b.len());
    let n = dst.len();
    let main = n - n % 8;
    let dp = complex_as_floats_mut(dst).as_mut_ptr();
    let ap = complex_as_floats(a).as_ptr();
    let bp = complex_as_floats(b).as_ptr();
    let mut i = 0;
    while i < main * 2 {
        let d = _mm512_loadu_ps(dp.add(i));
        let av = _mm512_loadu_ps(ap.add(i));
        let bv = _mm512_loadu_ps(bp.add(i));
        _mm512_storeu_ps(dp.add(i), _mm512_add_ps(d, cmul(av, bv)));
        i += 16;
    }
    super::avx2::mul_add_assign_c(&mut dst[main..], &a[main..], &b[main..]);
}

#[target_feature(enable = "avx512f,avx2,fma")]
pub unsafe fn conj_mul_assign_c(dst: &mut [Complex<f32>], g: &[Complex<f32>]) {
    assert_eq!(dst.len(), g.len());
    let n = dst.len();
    let main = n - n % 8;
    let dp = complex_as_floats_mut(dst).as_mut_ptr();
    let gp = complex_as_floats(g).as_ptr();
    let mut i = 0;
    while i < main * 2 {
        let d = _mm512_loadu_ps(dp.add(i));
        let gv = conj8(_mm512_loadu_ps(gp.add(i)));
        _mm512_storeu_ps(dp.add(i), cmul(d, gv));
        i += 16;
    }
    super::avx2::conj_mul_assign_c(&mut dst[main..], &g[main..]);
}

#[target_feature(enable = "avx512f,avx2,fma")]
pub unsafe fn conj_mul_add_assign_c(
    acc: &mut [Complex<f32>],
    x: &[Complex<f32>],
    g: &[Complex<f32>],
) {
    assert_eq!(acc.len(), x.len());
    assert_eq!(acc.len(), g.len());
    let n = acc.len();
    let main = n - n % 8;
    let dp = complex_as_floats_mut(acc).as_mut_ptr();
    let xp = complex_as_floats(x).as_ptr();
    let gp = complex_as_floats(g).as_ptr();
    // 4x unrolled, as in `mul_assign_c`.
    let main32 = (n - n % 32) * 2;
    let mut i = 0;
    while i < main32 {
        let d0 = _mm512_loadu_ps(dp.add(i));
        let d1 = _mm512_loadu_ps(dp.add(i + 16));
        let d2 = _mm512_loadu_ps(dp.add(i + 32));
        let d3 = _mm512_loadu_ps(dp.add(i + 48));
        let x0 = _mm512_loadu_ps(xp.add(i));
        let x1 = _mm512_loadu_ps(xp.add(i + 16));
        let x2 = _mm512_loadu_ps(xp.add(i + 32));
        let x3 = _mm512_loadu_ps(xp.add(i + 48));
        let g0 = conj8(_mm512_loadu_ps(gp.add(i)));
        let g1 = conj8(_mm512_loadu_ps(gp.add(i + 16)));
        let g2 = conj8(_mm512_loadu_ps(gp.add(i + 32)));
        let g3 = conj8(_mm512_loadu_ps(gp.add(i + 48)));
        _mm512_storeu_ps(dp.add(i), _mm512_add_ps(d0, cmul(x0, g0)));
        _mm512_storeu_ps(dp.add(i + 16), _mm512_add_ps(d1, cmul(x1, g1)));
        _mm512_storeu_ps(dp.add(i + 32), _mm512_add_ps(d2, cmul(x2, g2)));
        _mm512_storeu_ps(dp.add(i + 48), _mm512_add_ps(d3, cmul(x3, g3)));
        i += 64;
    }
    while i < main * 2 {
        let d = _mm512_loadu_ps(dp.add(i));
        let xv = _mm512_loadu_ps(xp.add(i));
        let gv = conj8(_mm512_loadu_ps(gp.add(i)));
        _mm512_storeu_ps(dp.add(i), _mm512_add_ps(d, cmul(xv, gv)));
        i += 16;
    }
    super::avx2::conj_mul_add_assign_c(&mut acc[main..], &x[main..], &g[main..]);
}
