//! Direct vs FFT convolution across kernel sizes — the microbenchmark
//! behind the §IV autotuner and the Fig 8/9 crossovers.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;
use znn_fft::FftEngine;
use znn_ops::{ConvMethod, Convolver};
use znn_tensor::{ops, Vec3};

fn bench_conv(c: &mut Criterion) {
    let engine = Arc::new(FftEngine::new());
    let mut group = c.benchmark_group("conv_valid");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));
    for k in [3usize, 5, 7] {
        let n = Vec3::cube(16);
        let img = ops::random(n, 1);
        let ker = ops::random(Vec3::cube(k), 2);
        for method in [ConvMethod::Direct, ConvMethod::Fft] {
            let conv = Convolver::new(method, Arc::clone(&engine));
            // warm the plan cache outside the measurement
            let _ = conv.conv_valid(&img, &ker, Vec3::one());
            group.bench_function(format!("{method:?}/k{k}"), |b| {
                b.iter(|| black_box(conv.conv_valid(black_box(&img), black_box(&ker), Vec3::one())))
            });
        }
    }
    group.finish();

    let mut group = c.benchmark_group("kernel_gradient");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));
    let n = Vec3::cube(16);
    let k = Vec3::cube(5);
    let img = ops::random(n, 3);
    let g = ops::random(n.valid_conv(k).unwrap(), 4);
    for method in [ConvMethod::Direct, ConvMethod::Fft] {
        let conv = Convolver::new(method, Arc::clone(&engine));
        let _ = conv.kernel_gradient(&img, &g, k, Vec3::one());
        group.bench_function(format!("{method:?}"), |b| {
            b.iter(|| black_box(conv.kernel_gradient(&img, &g, k, Vec3::one())))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_conv);
criterion_main!(benches);
