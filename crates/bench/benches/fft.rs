//! 3D FFT throughput: smooth vs awkward sizes, plan-cache reuse.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use std::time::Duration;
use znn_fft::{good_size, FftEngine};
use znn_tensor::{ops, Vec3};

fn bench_fft(c: &mut Criterion) {
    let engine = FftEngine::new();
    let mut group = c.benchmark_group("fft3");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));
    for n in [16usize, 17, 18, 20] {
        let img = ops::random(Vec3::cube(n), 1);
        // warm the plan cache
        let mut warm = ops::to_complex(&img);
        engine.fft3(&mut warm);
        group.bench_function(format!("n{n}{}", if good_size(n) == n { "(smooth)" } else { "" }), |b| {
            b.iter(|| {
                let mut t = ops::to_complex(black_box(&img));
                engine.fft3(&mut t);
                black_box(t)
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("padded_transform");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));
    let img = ops::random(Vec3::cube(13), 2);
    let raw = Vec3::cube(13 + 4); // 17 per axis: not smooth
    let smooth = Vec3::cube(good_size(13 + 4)); // 18 per axis
    let _ = engine.forward_padded(&img, raw);
    let _ = engine.forward_padded(&img, smooth);
    group.bench_function("pad_to_exact_17", |b| {
        b.iter(|| black_box(engine.forward_padded(&img, raw)))
    });
    group.bench_function("pad_to_smooth_18", |b| {
        b.iter(|| black_box(engine.forward_padded(&img, smooth)))
    });
    group.finish();
}

/// r2c half-spectrum transforms vs the c2c baseline on the shapes the
/// engine actually runs (the acceptance gate: r2c must win at >= 64³).
fn bench_r2c_vs_c2c(c: &mut Criterion) {
    let engine = FftEngine::new();
    let mut group = c.benchmark_group("r2c_vs_c2c");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500));
    for n in [32usize, 64, 72] {
        let m = Vec3::cube(n);
        let img = ops::random(m, 3);
        // warm plan caches for both pipelines
        black_box(engine.rfft3(&img));
        black_box(engine.forward_padded_c2c(&img, m));
        group.bench_function(format!("forward_r2c_{n}"), |b| {
            b.iter(|| black_box(engine.rfft3(black_box(&img))))
        });
        group.bench_function(format!("forward_c2c_{n}"), |b| {
            b.iter(|| black_box(engine.forward_padded_c2c(black_box(&img), m)))
        });
        // the inverse transforms consume their input, so the clone runs
        // in iter_batched's setup, off the clock (a c2c clone copies 2x
        // the bytes of an r2c clone and would skew the comparison)
        let spec = engine.rfft3(&img);
        let full = engine.forward_padded_c2c(&img, m);
        group.bench_function(format!("inverse_r2c_{n}"), |b| {
            b.iter_batched(
                || spec.clone(),
                |s| black_box(engine.irfft3(s)),
                BatchSize::PerIteration,
            )
        });
        group.bench_function(format!("inverse_c2c_{n}"), |b| {
            b.iter_batched(
                || full.clone(),
                |s| black_box(engine.inverse_real_c2c(s, Vec3::zero(), m)),
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fft, bench_r2c_vs_c2c);
criterion_main!(benches);
