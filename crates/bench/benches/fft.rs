//! 3D FFT throughput: smooth vs awkward sizes, plan-cache reuse.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use znn_fft::{good_size, FftEngine};
use znn_tensor::{ops, Vec3};

fn bench_fft(c: &mut Criterion) {
    let engine = FftEngine::new();
    let mut group = c.benchmark_group("fft3");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));
    for n in [16usize, 17, 18, 20] {
        let img = ops::random(Vec3::cube(n), 1);
        // warm the plan cache
        let mut warm = ops::to_complex(&img);
        engine.fft3(&mut warm);
        group.bench_function(format!("n{n}{}", if good_size(n) == n { "(smooth)" } else { "" }), |b| {
            b.iter(|| {
                let mut t = ops::to_complex(black_box(&img));
                engine.fft3(&mut t);
                black_box(t)
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("padded_transform");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));
    let img = ops::random(Vec3::cube(13), 2);
    let raw = Vec3::cube(13 + 4); // 17 per axis: not smooth
    let smooth = Vec3::cube(good_size(13 + 4)); // 18 per axis
    let _ = engine.forward_padded(&img, raw);
    let _ = engine.forward_padded(&img, smooth);
    group.bench_function("pad_to_exact_17", |b| {
        b.iter(|| black_box(engine.forward_padded(&img, raw)))
    });
    group.bench_function("pad_to_smooth_18", |b| {
        b.iter(|| black_box(engine.forward_padded(&img, smooth)))
    });
    group.finish();
}

criterion_group!(benches, bench_fft);
criterion_main!(benches);
