//! Queue ablation (§VII-A): heap-of-lists (O(log K)) vs a plain binary
//! heap (O(log N)) under a wide-network workload where K << N.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use znn_sched::queue::TaskQueue;
use znn_sched::QueuePolicy;

fn workload(policy: QueuePolicy, tasks: usize, distinct: u64) {
    let mut q: TaskQueue<u64> = TaskQueue::new(policy);
    // layered arrival: bursts of same-priority tasks, like wide layers
    for i in 0..tasks as u64 {
        q.push(i % distinct, i);
    }
    while q.pop().is_some() {}
}

fn bench_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));
    for (tasks, distinct) in [(10_000usize, 8u64), (10_000, 1000)] {
        group.bench_function(format!("heap_of_lists/N{tasks}/K{distinct}"), |b| {
            b.iter(|| workload(black_box(QueuePolicy::Priority), tasks, distinct))
        });
        group.bench_function(format!("binary_heap/N{tasks}/K{distinct}"), |b| {
            b.iter(|| workload(black_box(QueuePolicy::BinaryHeap), tasks, distinct))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_queue);
criterion_main!(benches);
