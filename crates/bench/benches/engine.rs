//! End-to-end engine benches: one training round of a small paper-style
//! network under each convolution policy and queue policy.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use znn_core::{ConvPolicy, TrainConfig, Znn};
use znn_graph::builder::scalability_net_3d;
use znn_sched::QueuePolicy;
use znn_tensor::{ops, Vec3};

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_round");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    let out = Vec3::cube(4);
    for (name, conv, memoize) in [
        ("direct", ConvPolicy::ForceDirect, false),
        ("fft", ConvPolicy::ForceFft, false),
        ("fft_memoized", ConvPolicy::ForceFft, true),
    ] {
        let (g, _) = scalability_net_3d(4);
        let cfg = TrainConfig {
            workers: 2,
            conv,
            memoize_fft: memoize,
            ..Default::default()
        };
        let znn = Znn::new(g, out, cfg).unwrap();
        let x = ops::random(znn.input_shape(), 1);
        let t = ops::random(out, 2);
        // one warm round outside measurement
        znn.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t));
        group.bench_function(name, |b| {
            b.iter(|| black_box(znn.train_step(black_box(std::slice::from_ref(&x)), black_box(std::slice::from_ref(&t)))))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("queue_policy_round");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for policy in [QueuePolicy::Priority, QueuePolicy::Fifo, QueuePolicy::Lifo] {
        let (g, _) = scalability_net_3d(4);
        let cfg = TrainConfig {
            workers: 2,
            queue: policy,
            conv: ConvPolicy::ForceDirect,
            ..Default::default()
        };
        let znn = Znn::new(g, out, cfg).unwrap();
        let x = ops::random(znn.input_shape(), 1);
        let t = ops::random(out, 2);
        znn.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t));
        group.bench_function(format!("{policy:?}"), |b| {
            b.iter(|| black_box(znn.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
