//! Concurrent summation ablation (§VII-B): Algorithm 4's wait-free
//! pointer-swap accumulation vs the naive strategy of adding under the
//! lock ("critical section time that scales linearly with image size").

use criterion::{criterion_group, criterion_main, Criterion};
use parking_lot::Mutex;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;
use znn_sched::{Accumulate, ConcurrentSum};
use znn_tensor::{ops, Image, Vec3};

struct Img(Image);
impl Accumulate for Img {
    fn accumulate(&mut self, other: Self) {
        ops::add_assign(&mut self.0, &other.0);
    }
}

fn wait_free(contributions: &[Image], threads: usize) -> Image {
    let sum = Arc::new(ConcurrentSum::<Img>::new(contributions.len()));
    std::thread::scope(|s| {
        for chunk in contributions.chunks(contributions.len().div_ceil(threads)) {
            let sum = Arc::clone(&sum);
            s.spawn(move || {
                for img in chunk {
                    sum.add(Img(img.clone()));
                }
            });
        }
    });
    sum.take().0
}

fn locked(contributions: &[Image], threads: usize) -> Image {
    let acc = Mutex::new(Image::zeros(contributions[0].shape()));
    std::thread::scope(|s| {
        for chunk in contributions.chunks(contributions.len().div_ceil(threads)) {
            let acc = &acc;
            s.spawn(move || {
                for img in chunk {
                    // the whole O(n³) add happens inside the lock
                    ops::add_assign(&mut acc.lock(), img);
                }
            });
        }
    });
    acc.into_inner()
}

fn bench_sum(c: &mut Criterion) {
    let mut group = c.benchmark_group("concurrent_sum");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(500));
    let contributions: Vec<Image> = (0..8).map(|i| ops::random(Vec3::cube(24), i)).collect();
    for threads in [2usize, 4] {
        group.bench_function(format!("wait_free/t{threads}"), |b| {
            b.iter(|| black_box(wait_free(&contributions, threads)))
        });
        group.bench_function(format!("mutex_adds/t{threads}"), |b| {
            b.iter(|| black_box(locked(&contributions, threads)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sum);
criterion_main!(benches);
