//! 1D kernel shoot-out: iterative mixed-radix Stockham vs the
//! recursive mixed-radix path it replaced.
//!
//! The acceptance gate for the kernel rewrites: at power-of-two lengths
//! ≥ 64 *and* at 5-smooth non-power-of-two lengths (24, 48, 60, 120,
//! 240 — the sizes `good_shape` actually emits between the powers of
//! two) the iterative kernels must beat the recursive ones. Lengths are
//! benched as *batched line transforms* (one `process_with_scratch`
//! call over many contiguous lines, ~64k complex elements per call) —
//! exactly how the 3D engine drives them.

use criterion::{criterion_group, criterion_main, Criterion};
use rustfft::{num_complex::Complex, Fft, FftDirection, FftPlanner};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn batch_for(n: usize) -> Vec<Complex<f32>> {
    let lines = (64 * 1024 / n).max(1);
    (0..lines * n)
        .map(|i| {
            let a = ((i * 37 + 11) % 101) as f32 / 101.0 - 0.5;
            let b = ((i * 53 + 29) % 97) as f32 / 97.0 - 0.5;
            Complex::new(a, b)
        })
        .collect()
}

fn bench_plan(c: &mut Criterion, group: &str, name: String, plan: Arc<dyn Fft<f32>>, batch: &[Complex<f32>]) {
    let mut g = c.benchmark_group(group);
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(500));
    let mut buf = batch.to_vec();
    let mut scratch = vec![Complex::new(0.0, 0.0); plan.get_inplace_scratch_len()];
    g.bench_function(name, |b| {
        b.iter(|| {
            buf.copy_from_slice(batch);
            plan.process_with_scratch(black_box(&mut buf), &mut scratch);
            black_box(&buf);
        })
    });
    g.finish();
}

/// Iterative Stockham vs recursive mixed-radix on identical batched
/// inputs: power-of-two lengths 16–512 (the radix-4/2 stages) and
/// 5-smooth non-power-of-two lengths 24–240 (the radix-3/5 stages).
fn bench_kernels(c: &mut Criterion) {
    let mut planner = FftPlanner::new();
    for n in [16usize, 32, 64, 128, 256, 512] {
        let batch = batch_for(n);
        bench_plan(
            c,
            "fft_kernels",
            format!("iterative_n{n}"),
            planner.plan_fft(n, FftDirection::Forward),
            &batch,
        );
        bench_plan(
            c,
            "fft_kernels",
            format!("recursive_n{n}"),
            planner.plan_fft_recursive(n, FftDirection::Forward),
            &batch,
        );
    }
    // the 5-smooth sweep: these lengths left the recursive fallback
    // when the radix-3/5 stages landed — the same comparison tracks
    // the win
    for n in [24usize, 48, 60, 120, 240] {
        let batch = batch_for(n);
        bench_plan(
            c,
            "fft_kernels_smooth",
            format!("iterative_n{n}"),
            planner.plan_fft(n, FftDirection::Forward),
            &batch,
        );
        bench_plan(
            c,
            "fft_kernels_smooth",
            format!("recursive_n{n}"),
            planner.plan_fft_recursive(n, FftDirection::Forward),
            &batch,
        );
    }
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
