//! 1D kernel shoot-out: iterative mixed-radix Stockham vs the
//! recursive mixed-radix path it replaced, and the SIMD-batched
//! butterflies vs their scalar twins.
//!
//! The acceptance gate for the kernel rewrites: at power-of-two lengths
//! ≥ 64 *and* at 5-smooth non-power-of-two lengths (24, 48, 60, 120,
//! 240 — the sizes `good_shape` actually emits between the powers of
//! two) the iterative kernels must beat the recursive ones. Lengths are
//! benched as *batched line transforms* (one `process_with_scratch`
//! call over many contiguous lines, ~64k complex elements per call) —
//! exactly how the 3D engine drives them.
//!
//! The `fft_kernels_simd` group isolates each butterfly radix with a
//! length that exercises only that radix family (64 = radix-4 only,
//! 27 = radix-3 only, 125 = radix-5 only, 128 = radix-4 + trailing-2);
//! `simd_*` vs `scalar_*` cases share one input batch. The
//! `pointwise_simd` group does the same for the spectrum/voxel
//! elementwise layer (`znn-simd` dispatched vs pinned-scalar twins).

use criterion::{criterion_group, criterion_main, Criterion};
use rustfft::{num_complex::Complex, Fft, FftDirection, FftPlanner};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn batch_for(n: usize) -> Vec<Complex<f32>> {
    let lines = (64 * 1024 / n).max(1);
    (0..lines * n)
        .map(|i| {
            let a = ((i * 37 + 11) % 101) as f32 / 101.0 - 0.5;
            let b = ((i * 53 + 29) % 97) as f32 / 97.0 - 0.5;
            Complex::new(a, b)
        })
        .collect()
}

fn bench_plan(c: &mut Criterion, group: &str, name: String, plan: Arc<dyn Fft<f32>>, batch: &[Complex<f32>]) {
    let mut g = c.benchmark_group(group);
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(500));
    let mut buf = batch.to_vec();
    let mut scratch = vec![Complex::new(0.0, 0.0); plan.get_inplace_scratch_len()];
    g.bench_function(name, |b| {
        b.iter(|| {
            buf.copy_from_slice(batch);
            plan.process_with_scratch(black_box(&mut buf), &mut scratch);
            black_box(&buf);
        })
    });
    g.finish();
}

/// Iterative Stockham vs recursive mixed-radix on identical batched
/// inputs: power-of-two lengths 16–512 (the radix-4/2 stages) and
/// 5-smooth non-power-of-two lengths 24–240 (the radix-3/5 stages).
fn bench_kernels(c: &mut Criterion) {
    let mut planner = FftPlanner::new();
    for n in [16usize, 32, 64, 128, 256, 512] {
        let batch = batch_for(n);
        bench_plan(
            c,
            "fft_kernels",
            format!("iterative_n{n}"),
            planner.plan_fft(n, FftDirection::Forward),
            &batch,
        );
        bench_plan(
            c,
            "fft_kernels",
            format!("recursive_n{n}"),
            planner.plan_fft_recursive(n, FftDirection::Forward),
            &batch,
        );
    }
    // the 5-smooth sweep: these lengths left the recursive fallback
    // when the radix-3/5 stages landed — the same comparison tracks
    // the win
    for n in [24usize, 48, 60, 120, 240] {
        let batch = batch_for(n);
        bench_plan(
            c,
            "fft_kernels_smooth",
            format!("iterative_n{n}"),
            planner.plan_fft(n, FftDirection::Forward),
            &batch,
        );
        bench_plan(
            c,
            "fft_kernels_smooth",
            format!("recursive_n{n}"),
            planner.plan_fft_recursive(n, FftDirection::Forward),
            &batch,
        );
    }
}

/// SIMD-batched butterflies vs their scalar twins, one case per radix
/// family. On hosts without AVX2 both plans run the scalar kernels and
/// the cases coincide — the group still runs, it just reports ~1×.
fn bench_simd_kernels(c: &mut Criterion) {
    let mut planner = FftPlanner::new();
    for (label, n) in [
        ("radix4_n64", 64usize),
        ("radix3_n27", 27),
        ("radix5_n125", 125),
        ("trailing2_n128", 128),
    ] {
        let batch = batch_for(n);
        bench_plan(
            c,
            "fft_kernels_simd",
            format!("simd_{label}"),
            planner.plan_fft(n, FftDirection::Forward),
            &batch,
        );
        bench_plan(
            c,
            "fft_kernels_simd",
            format!("scalar_{label}"),
            planner.plan_fft_scalar(n, FftDirection::Forward),
            &batch,
        );
    }
}

/// Dispatched (AVX2 where detected) vs pinned-scalar pointwise kernels
/// over a spectrum-sized buffer: the complex product/MAC pair that
/// dominates the §IV frequency-domain convolution, plus the real FMA
/// row the direct convolver and SGD updates lean on.
fn bench_pointwise(c: &mut Criterion) {
    const N: usize = 64 * 1024;
    let cx: Vec<Complex<f32>> = batch_for(N / 64); // 1024-long helper reuse
    let cbase: Vec<Complex<f32>> = (0..N).map(|i| cx[i % cx.len()]).collect();
    let fbase: Vec<f32> = cbase.iter().map(|z| z.re).collect();

    let mut g = c.benchmark_group("pointwise_simd");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(500));
    let mut dst_c = cbase.clone();
    g.bench_function("simd_cmul", |b| {
        b.iter(|| {
            dst_c.copy_from_slice(&cbase);
            znn_simd::mul_assign_c(black_box(&mut dst_c), &cbase);
            black_box(&dst_c);
        })
    });
    g.bench_function("scalar_cmul", |b| {
        b.iter(|| {
            dst_c.copy_from_slice(&cbase);
            znn_simd::scalar::mul_assign_c(black_box(&mut dst_c), &cbase);
            black_box(&dst_c);
        })
    });
    g.bench_function("simd_conj_mac", |b| {
        b.iter(|| {
            dst_c.copy_from_slice(&cbase);
            znn_simd::conj_mul_add_assign_c(black_box(&mut dst_c), &cbase, &cbase);
            black_box(&dst_c);
        })
    });
    g.bench_function("scalar_conj_mac", |b| {
        b.iter(|| {
            dst_c.copy_from_slice(&cbase);
            znn_simd::scalar::conj_mul_add_assign_c(black_box(&mut dst_c), &cbase, &cbase);
            black_box(&dst_c);
        })
    });
    let mut dst_f = fbase.clone();
    g.bench_function("simd_fma_row", |b| {
        b.iter(|| {
            dst_f.copy_from_slice(&fbase);
            znn_simd::fma_acc_f(black_box(&mut dst_f), 0.5, &fbase);
            black_box(&dst_f);
        })
    });
    g.bench_function("scalar_fma_row", |b| {
        b.iter(|| {
            dst_f.copy_from_slice(&fbase);
            znn_simd::scalar::fma_acc_f(black_box(&mut dst_f), 0.5, &fbase);
            black_box(&dst_f);
        })
    });
    g.finish();
}

criterion_group!(benches, bench_kernels, bench_simd_kernels, bench_pointwise);
criterion_main!(benches);
