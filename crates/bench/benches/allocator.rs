//! Allocator ablation (§VII-C): pooled power-of-two recycling vs the
//! system allocator for image-sized buffers — both the explicit
//! `get`/`put` pool and the RAII `PoolSet` leases the training engine
//! uses (storage returns on drop).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use znn_alloc::{ImagePool, PoolSet};
use znn_tensor::{Tensor3, Vec3};

fn bench_alloc(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocator");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));
    let shapes: Vec<Vec3> = (2..10).map(|s| Vec3::cube(s * 4)).collect();

    let pool = ImagePool::new();
    // warm the pools so the steady state is measured
    for &s in &shapes {
        let img = pool.get(s);
        pool.put(img);
    }
    group.bench_function("pooled", |b| {
        b.iter(|| {
            for &s in &shapes {
                let img = pool.get(black_box(s));
                pool.put(black_box(img));
            }
        })
    });
    let set = PoolSet::new();
    for &s in &shapes {
        drop(set.image(s));
    }
    group.bench_function("poolset_lease", |b| {
        b.iter(|| {
            for &s in &shapes {
                // RAII lease: recycled on drop, no explicit put
                black_box(set.image(black_box(s)));
            }
        })
    });
    group.bench_function("system", |b| {
        b.iter(|| {
            for &s in &shapes {
                let img = Tensor3::<f32>::zeros(black_box(s));
                black_box(img);
            }
        })
    });
    group.finish();
}

/// Contention ablation: N threads hammer one shared `PoolSet` with
/// lease/recycle cycles of a fixed class (the worst case for the
/// pool's lock — every thread hits the same size-class free list).
/// Scaling t1 → t8 exposes how much of the §VII-C win survives
/// multi-worker training.
fn bench_contention(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocator");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));
    let shape = Vec3::cube(32);
    const LEASES_PER_THREAD: usize = 64;
    for threads in [1usize, 2, 4, 8] {
        let set = PoolSet::new();
        // warm one chunk per thread so the steady state recycles
        let warm: Vec<_> = (0..threads).map(|_| set.image(shape)).collect();
        drop(warm);
        group.bench_function(format!("poolset_contended_t{threads}"), |b| {
            b.iter(|| {
                std::thread::scope(|scope| {
                    for _ in 0..threads {
                        scope.spawn(|| {
                            for _ in 0..LEASES_PER_THREAD {
                                black_box(set.image(black_box(shape)));
                            }
                        });
                    }
                });
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_alloc, bench_contention);
criterion_main!(benches);
