//! Allocator ablation (§VII-C): pooled power-of-two recycling vs the
//! system allocator for image-sized buffers — both the explicit
//! `get`/`put` pool and the RAII `PoolSet` leases the training engine
//! uses (storage returns on drop).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use znn_alloc::{ImagePool, PoolSet};
use znn_tensor::{Tensor3, Vec3};

fn bench_alloc(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocator");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));
    let shapes: Vec<Vec3> = (2..10).map(|s| Vec3::cube(s * 4)).collect();

    let pool = ImagePool::new();
    // warm the pools so the steady state is measured
    for &s in &shapes {
        let img = pool.get(s);
        pool.put(img);
    }
    group.bench_function("pooled", |b| {
        b.iter(|| {
            for &s in &shapes {
                let img = pool.get(black_box(s));
                pool.put(black_box(img));
            }
        })
    });
    let set = PoolSet::new();
    for &s in &shapes {
        drop(set.image(s));
    }
    group.bench_function("poolset_lease", |b| {
        b.iter(|| {
            for &s in &shapes {
                // RAII lease: recycled on drop, no explicit put
                black_box(set.image(black_box(s)));
            }
        })
    });
    group.bench_function("system", |b| {
        b.iter(|| {
            for &s in &shapes {
                let img = Tensor3::<f32>::zeros(black_box(s));
                black_box(img);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_alloc);
criterion_main!(benches);
