//! Max-filter ablation: monotonic deque vs the paper's heap variant
//! (§II: "we keep a heap of size k ... each operation taking log k").

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use znn_ops::filter::{max_filter, FilterImpl};
use znn_ops::pool::max_pool;
use znn_tensor::{ops, Vec3};

fn bench_filter(c: &mut Criterion) {
    let mut group = c.benchmark_group("max_filter");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));
    let img = ops::random(Vec3::cube(24), 1);
    for k in [2usize, 4] {
        for which in [FilterImpl::Deque, FilterImpl::Heap] {
            group.bench_function(format!("{which:?}/k{k}"), |b| {
                b.iter(|| {
                    black_box(max_filter(
                        black_box(&img),
                        Vec3::cube(k),
                        Vec3::one(),
                        which,
                    ))
                })
            });
        }
    }
    // pooling as the reference point (same window, disjoint blocks)
    group.bench_function("max_pool/k2", |b| {
        b.iter(|| black_box(max_pool(black_box(&img), Vec3::cube(2))))
    });
    group.finish();
}

criterion_group!(benches, bench_filter);
criterion_main!(benches);
