//! Table II — complexity of a fully-connected convolutional layer:
//! direct vs FFT vs FFT-memoized, analytic and measured.
//!
//! The measured columns run one layer of each kind through the real
//! engine (width f, one full train round restricted to the conv layer)
//! and report seconds/round; the shape to check is *who wins where*,
//! and that memoization cuts the FFT totals by roughly a third.

use std::sync::Arc;
use znn_bench::{fmt, header, row, time_per_round};
use znn_fft::FftEngine;
use znn_ops::{conv, ConvMethod, Convolver};
use znn_tensor::{ops, Vec3};
use znn_theory::flops::{ConvAlgorithm, LayerModel};

fn main() {
    println!("# Table II — fully-connected conv layer (f -> f'), n input, k kernel\n");
    let f = 4usize;
    let fp = 4usize;
    header(&[
        "n", "k",
        "direct total FLOPs", "fft total FLOPs", "memoized total FLOPs",
        "measured direct s", "measured fft s",
    ]);
    for (n, k) in [(20usize, 3usize), (20, 5), (24, 7), (24, 9)] {
        let model = LayerModel::Conv {
            n: n as f64,
            k: k as f64,
            f_in: f as f64,
            f_out: fp as f64,
        };
        let d = model.flops_default(ConvAlgorithm::Direct).total();
        let ff = model.flops_default(ConvAlgorithm::Fft).total();
        let fm = model.flops_default(ConvAlgorithm::FftMemoized).total();

        // measure one layer's forward+backward+update with each method
        let engine = Arc::new(FftEngine::new());
        let imgs: Vec<_> = (0..f).map(|i| ops::random(Vec3::cube(n), i as u64)).collect();
        let kers: Vec<_> = (0..f * fp)
            .map(|i| ops::random(Vec3::cube(k), 100 + i as u64))
            .collect();
        let out_shape = Vec3::cube(n).valid_conv(Vec3::cube(k)).unwrap();
        let g = ops::random(out_shape, 9);
        let measure = |method: ConvMethod| {
            let c = Convolver::new(method, Arc::clone(&engine));
            time_per_round(1, 3, || {
                for (i, ker) in kers.iter().enumerate() {
                    let x = &imgs[i % f];
                    std::hint::black_box(c.conv_valid(x, ker, Vec3::one()));
                    std::hint::black_box(c.input_gradient(&g, ker, Vec3::one()));
                    std::hint::black_box(c.kernel_gradient(x, &g, Vec3::cube(k), Vec3::one()));
                }
            })
        };
        let td = measure(ConvMethod::Direct);
        let tf = measure(ConvMethod::Fft);
        row(&[
            n.to_string(),
            k.to_string(),
            fmt(d),
            fmt(ff),
            fmt(fm),
            fmt(td),
            fmt(tf),
        ]);
        let _ = conv::valid_shape(Vec3::cube(n), Vec3::cube(k), Vec3::one());
    }
    println!("\nexpected shape: direct wins at small k, FFT wins at large k;");
    println!("memoized/fft analytic ratio approaches 2/3 for wide layers.");
}
