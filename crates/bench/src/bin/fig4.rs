//! Fig 4 — theoretically achievable speedup (Brent's theorem bound) vs
//! network width, for (a) direct and (b) memoized FFT convolution.
//!
//! Reproduces the paper's parameters: P ∈ {8, 18, 40, 60, 120}, depths
//! 4–40, kernels 5³. Each line of output is one curve.

use znn_theory::brent::{achievable_speedup, NetworkModel};
use znn_theory::flops::ConvAlgorithm;

fn main() {
    let widths: Vec<f64> = (1..=24).map(|i| (i * 5) as f64).collect();
    let processors = [8.0, 18.0, 40.0, 60.0, 120.0];
    let depths = [4usize, 12, 40];

    for (label, algo) in [
        ("(a) direct convolution", ConvAlgorithm::Direct),
        ("(b) FFT-based convolution with memoization", ConvAlgorithm::FftMemoized),
    ] {
        println!("# Fig 4{label}");
        println!("width: {widths:?}");
        for &p in &processors {
            for &d in &depths {
                let curve: Vec<String> = widths
                    .iter()
                    .map(|&w| {
                        let net = NetworkModel::fully_connected(d, w, 5.0, 12.0);
                        format!("{:.1}", achievable_speedup(&net, algo, p))
                    })
                    .collect();
                println!("P={p:>3} depth={d:>2}: [{}]", curve.join(", "));
            }
        }
        println!();
    }
    println!("shape check: every curve rises toward its P asymptote; the width");
    println!("needed to reach 75% of P grows with P; depth shifts curves only");
    println!("slightly (multiple same-colour lines in the paper's figure).");
}
