//! §X — scheduling-policy ablation: the paper's priority scheduler vs
//! FIFO, LIFO and work stealing.
//!
//! Simulated makespans come from the discrete-event scheduler running
//! the real task graph on the Table V machines; the host rows run the
//! real engine under each queue policy on this machine's threads.
//! `--smoke` shrinks the networks and rounds so CI can keep this bin
//! building and running without paying for the full ablation.
//!
//! Emits `BENCH_sched.json` — simulated makespans per policy per
//! network plus the host rows — so the scheduling trajectory is
//! tracked across PRs like every other bench bin.

use std::fmt::Write as _;
use znn_bench::{fmt, header, row, time_per_round};
use znn_core::{ConvPolicy, TrainConfig, Znn};
use znn_graph::builder::{scalability_net_2d, scalability_net_3d};
use znn_sched::QueuePolicy;
use znn_sim::costs::task_costs;
use znn_sim::{simulate, Machine, SimConfig};
use znn_tensor::{ops, Vec3};
use znn_theory::flops::ConvAlgorithm;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let width = if smoke { 4 } else { 20 };
    let sim_rounds = if smoke { 1 } else { 2 };
    println!("# §X — scheduling ablation (simulated makespan, lower is better)\n");
    let machine = Machine::xeon_e5_18core();
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"sim_machine\": \"{}\",", machine.name);
    let _ = writeln!(json, "  \"sim_workers\": 18,");
    json.push_str("  \"simulated\": [\n");
    header(&["network", "priority", "fifo", "lifo", "binary-heap"]);
    let mut recs = Vec::new();
    for (name, key, tgc) in [
        (format!("2D width {width}"), "net2d", {
            let (g, _) = scalability_net_2d(width);
            task_costs(&g, Vec3::flat(48, 48), ConvAlgorithm::Fft, true).unwrap()
        }),
        (format!("3D width {width}"), "net3d", {
            let (g, _) = scalability_net_3d(width);
            task_costs(&g, Vec3::cube(12), ConvAlgorithm::Direct, false).unwrap()
        }),
    ] {
        let (tg, costs) = tgc;
        let run = |policy| {
            simulate(
                &tg,
                &costs,
                &machine,
                &SimConfig {
                    workers: 18,
                    policy,
                    rounds: sim_rounds,
                    ..Default::default()
                },
            )
            .makespan
        };
        let (pri, fifo, lifo, heap) = (
            run(QueuePolicy::Priority),
            run(QueuePolicy::Fifo),
            run(QueuePolicy::Lifo),
            run(QueuePolicy::BinaryHeap),
        );
        row(&[name.clone(), fmt(pri), fmt(fifo), fmt(lifo), fmt(heap)]);
        recs.push(format!(
            "    {{\"net\": \"{key}\", \"width\": {width}, \"priority_s\": {pri:.6e}, \
             \"fifo_s\": {fifo:.6e}, \"lifo_s\": {lifo:.6e}, \"binary_heap_s\": {heap:.6e}}}"
        ));
    }
    json.push_str(&recs.join(",\n"));
    json.push_str("\n  ],\n");
    println!("\n(binary-heap shares the priority *order* — same makespan — but");
    println!("pays O(log N) per queue op instead of O(log K); see the `queue`");
    println!("criterion bench for the data-structure cost.)\n");

    println!("# host rows: real engine under each policy (s/update)\n");
    header(&["policy", "s/update"]);
    let (g, _) = scalability_net_3d(if smoke { 2 } else { 4 });
    let policies: &[QueuePolicy] = if smoke {
        &[QueuePolicy::Priority]
    } else {
        &[QueuePolicy::Priority, QueuePolicy::Fifo, QueuePolicy::Lifo]
    };
    let (warm, reps) = if smoke { (0, 1) } else { (1, 4) };
    json.push_str("  \"host\": [\n");
    let mut recs = Vec::new();
    for &policy in policies {
        let cfg = TrainConfig {
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            queue: policy,
            conv: ConvPolicy::ForceDirect,
            ..Default::default()
        };
        let znn = Znn::new(g.clone(), Vec3::cube(4), cfg).unwrap();
        let x = ops::random(znn.input_shape(), 1);
        let t = ops::random(Vec3::cube(4), 2);
        let dt = time_per_round(warm, reps, || {
            znn.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t));
        });
        row(&[format!("{policy:?}"), fmt(dt)]);
        recs.push(format!(
            "    {{\"policy\": \"{policy:?}\", \"s_per_update\": {dt:.6e}}}"
        ));
    }
    json.push_str(&recs.join(",\n"));
    json.push_str("\n  ]\n}\n");

    match std::fs::write("BENCH_sched.json", &json) {
        Ok(()) => println!("\nwrote BENCH_sched.json"),
        Err(e) => {
            eprintln!("\ncould not write BENCH_sched.json: {e}");
            std::process::exit(1);
        }
    }
}
