//! §X — scheduling-policy ablation: the paper's priority scheduler vs
//! FIFO, LIFO and work stealing.
//!
//! Simulated makespans come from the discrete-event scheduler running
//! the real task graph on the Table V machines; the host rows run the
//! real engine under each queue policy on this machine's threads.
//! `--smoke` shrinks the networks and rounds so CI can keep this bin
//! building and running without paying for the full ablation.

use znn_bench::{fmt, header, row, time_per_round};
use znn_core::{ConvPolicy, TrainConfig, Znn};
use znn_graph::builder::{scalability_net_2d, scalability_net_3d};
use znn_sched::QueuePolicy;
use znn_sim::costs::task_costs;
use znn_sim::{simulate, Machine, SimConfig};
use znn_tensor::{ops, Vec3};
use znn_theory::flops::ConvAlgorithm;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let width = if smoke { 4 } else { 20 };
    let sim_rounds = if smoke { 1 } else { 2 };
    println!("# §X — scheduling ablation (simulated makespan, lower is better)\n");
    let machine = Machine::xeon_e5_18core();
    header(&["network", "priority", "fifo", "lifo", "binary-heap"]);
    for (name, tgc) in [
        (format!("2D width {width}"), {
            let (g, _) = scalability_net_2d(width);
            task_costs(&g, Vec3::flat(48, 48), ConvAlgorithm::Fft, true).unwrap()
        }),
        (format!("3D width {width}"), {
            let (g, _) = scalability_net_3d(width);
            task_costs(&g, Vec3::cube(12), ConvAlgorithm::Direct, false).unwrap()
        }),
    ] {
        let (tg, costs) = tgc;
        let run = |policy| {
            simulate(
                &tg,
                &costs,
                &machine,
                &SimConfig {
                    workers: 18,
                    policy,
                    rounds: sim_rounds,
                    ..Default::default()
                },
            )
            .makespan
        };
        row(&[
            name.clone(),
            fmt(run(QueuePolicy::Priority)),
            fmt(run(QueuePolicy::Fifo)),
            fmt(run(QueuePolicy::Lifo)),
            fmt(run(QueuePolicy::BinaryHeap)),
        ]);
    }
    println!("\n(binary-heap shares the priority *order* — same makespan — but");
    println!("pays O(log N) per queue op instead of O(log K); see the `queue`");
    println!("criterion bench for the data-structure cost.)\n");

    println!("# host rows: real engine under each policy (s/update)\n");
    header(&["policy", "s/update"]);
    let (g, _) = scalability_net_3d(if smoke { 2 } else { 4 });
    let policies: &[QueuePolicy] = if smoke {
        &[QueuePolicy::Priority]
    } else {
        &[QueuePolicy::Priority, QueuePolicy::Fifo, QueuePolicy::Lifo]
    };
    let (warm, reps) = if smoke { (0, 1) } else { (1, 4) };
    for &policy in policies {
        let cfg = TrainConfig {
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            queue: policy,
            conv: ConvPolicy::ForceDirect,
            ..Default::default()
        };
        let znn = Znn::new(g.clone(), Vec3::cube(4), cfg).unwrap();
        let x = ops::random(znn.input_shape(), 1);
        let t = ops::random(Vec3::cube(4), 2);
        let dt = time_per_round(warm, reps, || {
            znn.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t));
        });
        row(&[format!("{policy:?}"), fmt(dt)]);
    }
}
