//! Figs 6 and 7 — maximum achieved speedup vs network width, 2D
//! (Fig 6, FFT convolution) and 3D (Fig 7, direct convolution), one
//! line per machine, all hardware threads in use.

use znn_graph::builder::{scalability_net_2d, scalability_net_3d};
use znn_sim::costs::task_costs;
use znn_sim::{simulate, Machine, SimConfig};
use znn_tensor::Vec3;
use znn_theory::flops::ConvAlgorithm;

fn main() {
    let widths = [5usize, 10, 15, 20, 25, 30, 40, 50, 60, 80, 100, 120];
    for (fig, dim, algo, out_shape) in [
        ("Fig 6", "2D", ConvAlgorithm::Fft, Vec3::flat(48, 48)),
        ("Fig 7", "3D", ConvAlgorithm::Direct, Vec3::cube(12)),
    ] {
        println!("# {fig} — achieved speedup vs width ({dim})\n");
        println!("width: {widths:?}");
        for machine in Machine::table_v() {
            let series: Vec<String> = widths
                .iter()
                .map(|&w| {
                    let (g, _) = if dim == "2D" {
                        scalability_net_2d(w)
                    } else {
                        scalability_net_3d(w)
                    };
                    let (tg, costs) = task_costs(&g, out_shape, algo, true).unwrap();
                    let r = simulate(
                        &tg,
                        &costs,
                        &machine,
                        &SimConfig {
                            workers: machine.hw_threads,
                            rounds: 2,
                            ..Default::default()
                        },
                    );
                    format!("{:.1}", r.speedup)
                })
                .collect();
            println!("{:<28} [{}]", machine.name, series.join(", "));
        }
        println!();
    }
    println!("shape check: speedup rises with width and saturates near (or a");
    println!("bit above) the core count of each machine; the many-core Phi");
    println!("needs wider networks (>=80) to saturate than the Xeons (>=30).");
}
