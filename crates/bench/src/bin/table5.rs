//! Table V — the experiment machines, as modelled by the simulator.

use znn_bench::{header, row};
use znn_sim::Machine;

fn main() {
    println!("# Table V — machines (simulated models; see DESIGN.md)\n");
    header(&[
        "CPU", "GHz", "cores/threads", "SMT throughput curve", "peak throughput (1-thread units)",
    ]);
    for m in Machine::table_v() {
        row(&[
            m.name.into(),
            format!("{}", m.ghz),
            format!("{} cores/{} threads", m.cores, m.hw_threads),
            format!("{:?}", m.smt_throughput),
            format!("{:.1}", m.total_throughput(m.hw_threads)),
        ]);
    }
    println!("\nAlso: this host reports {} hardware threads.",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
}
