//! Planner report — the `znn-plan` cost-model planner vs the grid of
//! fixed strategies it replaces, on the paper's benchmark geometries.
//!
//! For each net the `Auto` plan is resolved against the detected
//! machine prior, trained long enough for online calibration to engage,
//! and timed; every fixed strategy (direct / FFT × smooth / pow2 pads ×
//! fan-out) is built as a `NetPlan::force` plan, priced through the
//! *same* model, and timed identically. The headline number per net is
//! the gap `auto_measured / best_fixed_measured`.
//!
//! Emits `BENCH_plan.json`: machine prior, per-edge chosen plan,
//! predicted vs measured round times before and after calibration, the
//! calibration trajectory, and a per-net verdict. The verdict is the
//! ISSUE's acceptance bound — `Auto` within 15% of the best fixed
//! strategy (an absolute sub-3ms slack absorbs scheduler noise on tiny
//! rounds; on a shared single-core host that noise rivals whole
//! rounds). **The bin exits non-zero if any verdict fails**, so a
//! regressed planner cannot silently refresh the committed JSON.
//!
//! `--smoke` shrinks nets and round counts for CI.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;
use znn_core::{ConvPolicy, PlanPolicy, TrainConfig, Znn};
use znn_graph::builder::{comparison_net, scalability_net_2d, scalability_net_3d};
use znn_graph::{EdgeOp, Graph};
use znn_ops::ConvMethod;
use znn_plan::{NetPlan, PlanConfig, Planner};
use znn_tensor::{ops, Vec3};

/// Auto must be within 15% of the best fixed strategy…
const GAP_BOUND: f64 = 1.15;
/// …or within this absolute slack of it (scheduler noise floor, µs).
const ABS_SLACK_US: f64 = 3_000.0;

struct NetCase {
    name: &'static str,
    graph: Graph,
    out: Vec3,
}

struct FixedResult {
    label: String,
    method: ConvMethod,
    fft_threads: usize,
    pow2: bool,
    predicted_us: f64,
    measured_us: f64,
}

fn nets(smoke: bool) -> Vec<NetCase> {
    let (fig8, _) = comparison_net(2, Vec3::flat(5, 5), Vec3::flat(2, 2), true);
    let (fig9, _) = comparison_net(2, Vec3::cube(5), Vec3::cube(2), true);
    // anisotropic EM-stack geometry: thin z, wide xy, mixed kernel
    let (aniso, _) = comparison_net(2, Vec3::new(2, 5, 5), Vec3::new(1, 2, 2), true);
    let (flat2d, _) = scalability_net_2d(2);
    let (vol3d, _) = scalability_net_3d(2);
    if smoke {
        vec![
            NetCase { name: "fig9_3d", graph: fig9, out: Vec3::cube(2) },
            NetCase { name: "flat_2d", graph: flat2d, out: Vec3::flat(4, 4) },
        ]
    } else {
        vec![
            NetCase { name: "fig8_2d", graph: fig8, out: Vec3::flat(16, 16) },
            NetCase { name: "fig9_3d", graph: fig9, out: Vec3::cube(4) },
            NetCase { name: "aniso", graph: aniso, out: Vec3::new(2, 8, 8) },
            NetCase { name: "flat_2d", graph: flat2d, out: Vec3::flat(8, 8) },
            NetCase { name: "vol_3d", graph: vol3d, out: Vec3::cube(4) },
        ]
    }
}

/// Median wall time per round of `rounds` training steps after
/// `warmup` unmeasured ones.
fn median_round_us(znn: &Znn, out: Vec3, warmup: usize, rounds: usize, seed: u64) -> f64 {
    let x = ops::random(znn.input_shape(), seed);
    let t = ops::random(out, seed + 1).map(|v| 0.3 * v);
    for _ in 0..warmup {
        znn.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t));
    }
    let mut samples: Vec<f64> = (0..rounds)
        .map(|_| {
            let t0 = Instant::now();
            znn.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t));
            t0.elapsed().as_micros() as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn config(workers: usize, plan: PlanPolicy) -> TrainConfig {
    TrainConfig {
        workers,
        conv: ConvPolicy::Autotune,
        plan: Some(plan),
        ..Default::default()
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let workers = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);
    let (warmup, rounds) = if smoke { (1, 3) } else { (2, 7) };

    let machine = znn_plan::Machine::detect();
    println!(
        "# plan report — Auto vs the fixed-strategy grid ({} workers)\n",
        workers
    );
    println!(
        "machine prior: {} ({} cores, {:.2} GFLOP/s, {:.2} GB/s)\n",
        machine.name, machine.cores, machine.gflops, machine.bandwidth_gbs
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"workers\": {workers},");
    let _ = writeln!(
        json,
        "  \"machine\": {{\"name\": \"{}\", \"cores\": {}, \"gflops\": {:.3}, \
         \"bandwidth_gbs\": {:.3}}},",
        machine.name, machine.cores, machine.gflops, machine.bandwidth_gbs
    );
    json.push_str("  \"nets\": [\n");

    let mut all_pass = true;
    let mut net_records = Vec::new();
    for case in nets(smoke) {
        println!("## {}", case.name);
        // one planner per net: its calibration history belongs to this
        // net's trajectory, and detect() already ran above
        let planner = Arc::new(Planner::new(PlanConfig::for_machine(machine.clone())));
        let znn = Znn::new(
            case.graph.clone(),
            case.out,
            config(workers, PlanPolicy::Auto(Arc::clone(&planner))),
        )
        .expect("net sizes");
        let plan = Arc::clone(znn.net_plan().expect("Auto resolves a plan"));
        let prior_us = plan.predicted_round_us;

        // the fixed grid: direct once (pads/fan-out are FFT knobs), FFT
        // across pad shape × deduped fan-outs. Priced and measured
        // *before* the Auto run so every predicted column uses the
        // pristine prior scale — comparable to `prior_us`, and the
        // argmin property is visible in the JSON.
        let mut fans = vec![1usize, workers.div_ceil(2), workers];
        fans.dedup();
        let mut grid: Vec<(ConvMethod, usize, bool)> = vec![(ConvMethod::Direct, 1, false)];
        for &fan in &fans {
            grid.push((ConvMethod::Fft, fan, false));
            grid.push((ConvMethod::Fft, fan, true));
        }
        let mut fixed = Vec::new();
        for (method, fan, pow2) in grid {
            let forced =
                Arc::new(NetPlan::force(&case.graph, case.out, method, fan, pow2).unwrap());
            let predicted_us = planner
                .price(&case.graph, case.out, workers, &forced)
                .unwrap();
            let fz = Znn::new(
                case.graph.clone(),
                case.out,
                config(workers, PlanPolicy::Fixed(Arc::clone(&forced))),
            )
            .expect("net sizes");
            let measured_us = median_round_us(&fz, case.out, warmup, rounds, 11);
            let label = format!(
                "{}_t{}{}",
                match method {
                    ConvMethod::Direct => "direct",
                    ConvMethod::Fft => "fft",
                },
                fan,
                if pow2 { "_pow2" } else { "" }
            );
            println!("  fixed {label:>14}: predicted {predicted_us:>8.0}µs, measured {measured_us:>8.0}µs");
            fixed.push(FixedResult {
                label,
                method,
                fft_threads: fan,
                pow2,
                predicted_us,
                measured_us,
            });
        }
        // enough rounds that calibration (default: after 3) engages
        let auto_rounds = rounds.max(planner.config().calibrate_after as usize + rounds);
        let auto_us = median_round_us(&znn, case.out, warmup, auto_rounds, 11);
        let cal = planner.calibration();
        let calibrated_us = cal
            .rounds
            .last()
            .map(|r| r.predicted_us)
            .unwrap_or(prior_us);

        let best = fixed
            .iter()
            .map(|f| f.measured_us)
            .fold(f64::INFINITY, f64::min);
        let gap = auto_us / best;
        let pass = gap <= GAP_BOUND || auto_us - best <= ABS_SLACK_US;
        all_pass &= pass;
        println!(
            "  auto: predicted {prior_us:.0}µs prior / {calibrated_us:.0}µs calibrated, \
             measured {auto_us:.0}µs"
        );
        println!(
            "  gap vs best fixed ({best:.0}µs): {gap:.3} -> {}\n",
            if pass { "pass" } else { "FAIL" }
        );

        let mut rec = String::new();
        let _ = writeln!(rec, "    {{\"net\": \"{}\",", case.name);
        let _ = writeln!(rec, "     \"fft_threads\": {},", plan.fft_threads);
        // the per-edge chosen plan, deduped by conv geometry
        let mut seen: Vec<String> = Vec::new();
        let mut layers = Vec::new();
        for (i, e) in case.graph.edges().iter().enumerate() {
            if let EdgeOp::Conv { kernel, .. } = e.op {
                let ep = plan.edges[i].unwrap();
                let key = format!(
                    "{{\"kernel\": \"{kernel}\", \"method\": \"{:?}\", \"pad\": \"{}\", \
                     \"predicted_us\": {:.1}}}",
                    ep.method, ep.pad, ep.predicted_us
                );
                if !seen.contains(&key) {
                    seen.push(key.clone());
                    layers.push(format!("       {key}"));
                }
            }
        }
        let _ = writeln!(rec, "     \"layers\": [\n{}\n     ],", layers.join(",\n"));
        let _ = writeln!(rec, "     \"predicted_round_us_prior\": {prior_us:.1},");
        let _ = writeln!(
            rec,
            "     \"predicted_round_us_calibrated\": {calibrated_us:.1},"
        );
        let _ = writeln!(rec, "     \"auto_measured_us\": {auto_us:.1},");
        let cal_rows: Vec<String> = cal
            .rounds
            .iter()
            .map(|r| {
                format!(
                    "       {{\"round\": {}, \"predicted_us\": {:.1}, \"measured_us\": {:.1}, \
                     \"scale\": {:.4}}}",
                    r.round, r.predicted_us, r.measured_us, r.scale
                )
            })
            .collect();
        let _ = writeln!(
            rec,
            "     \"calibration\": [\n{}\n     ],",
            cal_rows.join(",\n")
        );
        let _ = writeln!(rec, "     \"replans\": {},", cal.replans);
        let fixed_rows: Vec<String> = fixed
            .iter()
            .map(|f| {
                format!(
                    "       {{\"strategy\": \"{}\", \"method\": \"{:?}\", \"fft_threads\": {}, \
                     \"pow2\": {}, \"predicted_us\": {:.1}, \"measured_us\": {:.1}}}",
                    f.label, f.method, f.fft_threads, f.pow2, f.predicted_us, f.measured_us
                )
            })
            .collect();
        let _ = writeln!(rec, "     \"fixed\": [\n{}\n     ],", fixed_rows.join(",\n"));
        let _ = writeln!(rec, "     \"best_fixed_us\": {best:.1},");
        let _ = writeln!(rec, "     \"gap\": {gap:.4},");
        let _ = write!(rec, "     \"verdict\": \"{}\"}}", if pass { "pass" } else { "fail" });
        net_records.push(rec);
    }
    json.push_str(&net_records.join(",\n"));
    json.push_str("\n  ],\n");
    let _ = writeln!(json, "  \"gap_bound\": {GAP_BOUND},");
    let _ = writeln!(json, "  \"all_pass\": {all_pass}");
    json.push_str("}\n");

    match std::fs::write("BENCH_plan.json", &json) {
        Ok(()) => println!("wrote BENCH_plan.json"),
        Err(e) => {
            eprintln!("could not write BENCH_plan.json: {e}");
            std::process::exit(1);
        }
    }
    if !all_pass {
        eprintln!("verdict failed: Auto exceeded the {GAP_BOUND}x gap bound on some net");
        std::process::exit(1);
    }
}
