//! Serve soak — overload-safety telemetry for the inference server:
//!
//! * `"uncontended"` — the latency floor: sequential requests against
//!   an idle server. p50/p99 service latency (submit → worker fulfill,
//!   measured with `Ticket::wait_timed` so client collection lag is
//!   not charged) and dense output volumes per second.
//! * `"overload"` — open-loop arrivals paced at 2× the measured
//!   service capacity against a tight admission watermark. Admission
//!   control must shed (`shed_under_overload`), and the p99 of the
//!   requests it *does* admit must stay within 3× the uncontended p99
//!   (`p99_bounded`) — the whole point of shedding at a watermark
//!   instead of queueing unboundedly. The uncontended reference p99
//!   (`p99_baseline_s`) is measured through the *same* open-loop
//!   harness at 0.5× capacity (where the queue never builds), so the
//!   ratio isolates queueing delay from submitter-thread wakeup noise.
//! * `"degrade"` — the same pressure against a server whose
//!   degradation watermark sits below its admission watermark: workers
//!   must halve batch/block sizes (`ladder_engaged`) before shedding.
//! * `"faults"` — a request mix under deadlines with recurring
//!   `SlowTask` (stalls past the budget → typed mid-volume
//!   cancellation), recurring `TaskPanic` (contained per request), and
//!   seeded-probability `RejectLease` (typed shed at submit). Survived
//!   means every submission got a typed answer and the counters
//!   reconcile exactly.
//! * `"pool"` — flat-memory verdicts: pool resident bytes sampled
//!   after the first traffic phase must not grow through overload and
//!   faults (`resident_flat`), and after shutdown every pooled lease
//!   must be home (`pool_leaked_bytes` = 0).
//!
//! Emits `BENCH_serve.json` and exits non-zero if any verdict fails,
//! so CI's `--smoke` run gates the overload-safety properties, not
//! just the numbers' existence.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};
use znn_alloc::PoolSet;
use znn_bench::{fmt, header, row};
use znn_core::{ConvPolicy, DenseConfig, DenseNet};
use znn_fault::{FaultKind, FaultPlan};
use znn_graph::NetBuilder;
use znn_ops::Transfer;
use znn_serve::{Rejected, ServeConfig, Server};
use znn_tensor::{ops, Image, Vec3};

/// The served net: the Fig. 2 filtering form (max-filter, not
/// max-pool) so the dense path tiles it freely. fov (1,8,8).
fn dense_net(pools: Arc<PoolSet>) -> Arc<DenseNet> {
    let (graph, _) = NetBuilder::new("serve-soak", 1)
        .conv(2, Vec3::flat(3, 3))
        .transfer(Transfer::Tanh)
        .max_filter(Vec3::flat(2, 2))
        .conv(1, Vec3::flat(3, 3))
        .transfer(Transfer::Tanh)
        .build()
        .expect("soak net builds");
    let cfg = DenseConfig {
        conv: ConvPolicy::Autotune,
        pools: Some(pools),
        ..DenseConfig::default()
    };
    Arc::new(DenseNet::new(graph, 7, cfg).expect("soak net sizes"))
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Open-loop paced run against a fresh server: submit `n` arrivals at
/// `interval`, collect worker-side completion latencies for every
/// admitted request, shut down. Baseline and overload both run through
/// this, so the submitter thread's wakeup noise (which preempts
/// workers on small machines) lands in both samples and the p99 ratio
/// isolates what queueing adds.
fn open_loop(
    net: &Arc<DenseNet>,
    cfg: ServeConfig,
    input: &Image,
    interval: Duration,
    n: u64,
) -> (Vec<f64>, znn_serve::ServeStats) {
    let server = Server::start(Arc::clone(net), cfg);
    let mut pending = Vec::new();
    for _ in 0..n {
        let start = Instant::now();
        match server.submit(input.clone(), None) {
            Ok(ticket) => pending.push((start, ticket)),
            Err(Rejected::Overloaded { .. }) => {}
            Err(e) => panic!("unexpected rejection in open-loop run: {e}"),
        }
        std::thread::sleep(interval);
    }
    let mut lat: Vec<f64> = pending
        .into_iter()
        .map(|(start, ticket)| {
            let (result, done) = ticket.wait_timed();
            result.expect("admitted requests complete");
            (done - start).as_secs_f64()
        })
        .collect();
    lat.sort_by(f64::total_cmp);
    let stats = server.shutdown();
    assert_eq!(stats.submitted, n, "every arrival was offered");
    (lat, stats)
}

/// Submit one request and wait; returns worker-side service latency.
fn serve_one(server: &Server, input: &Image) -> f64 {
    let start = Instant::now();
    let ticket = server.submit(input.clone(), None).expect("idle server admits");
    let (result, done) = ticket.wait_timed();
    result.expect("idle server completes");
    (done - start).as_secs_f64()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let pools = PoolSet::new();
    let net = dense_net(Arc::clone(&pools));
    // large enough that per-volume service time (~0.5 ms) dwarfs
    // scheduler wakeup jitter, so the p99 ratio measures queueing, not
    // the OS
    let in_shape = Vec3::flat(40, 40);
    net.warmup(in_shape);
    let input = ops::random(in_shape, 11);
    let block = Vec3::flat(10, 10);

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let mut failures: Vec<&'static str> = Vec::new();
    // workers beyond the core count oversubscribe and inflate every
    // concurrent service time, which is overload the *machine* causes,
    // not overload the server must bound
    let workers = std::thread::available_parallelism()
        .map(|n| n.get().min(2))
        .unwrap_or(1);
    let _ = writeln!(json, "  \"workers\": {workers},");

    // --- uncontended latency floor ----------------------------------
    let (p50_idle, p99_idle, volumes_per_s) = {
        let server = Server::start(
            Arc::clone(&net),
            ServeConfig {
                workers,
                block,
                ..ServeConfig::default()
            },
        );
        let reps = if smoke { 24 } else { 150 };
        for _ in 0..3 {
            serve_one(&server, &input); // warm workers + conv autotune
        }
        let start = Instant::now();
        let mut lat: Vec<f64> = (0..reps).map(|_| serve_one(&server, &input)).collect();
        let elapsed = start.elapsed().as_secs_f64();
        lat.sort_by(f64::total_cmp);
        let stats = server.shutdown();
        assert_eq!(stats.shed_overload, 0, "idle server must not shed");
        (
            percentile(&lat, 0.50),
            percentile(&lat, 0.99),
            reps as f64 / elapsed,
        )
    };
    println!("# serve soak — uncontended floor\n");
    header(&["p50 s", "p99 s", "volumes/s"]);
    row(&[fmt(p50_idle), fmt(p99_idle), format!("{volumes_per_s:.1}")]);
    json.push_str("  \"uncontended\": {\n");
    let _ = writeln!(json, "    \"p50_s\": {p50_idle:.6e},");
    let _ = writeln!(json, "    \"p99_s\": {p99_idle:.6e},");
    let _ = writeln!(json, "    \"volumes_per_s\": {volumes_per_s:.2}");
    json.push_str("  },\n");

    // --- overload at 2× capacity ------------------------------------
    // same server shape for baseline and overload; only the arrival
    // rate changes, so the ratio measures queueing, not the harness
    let tight = ServeConfig {
        workers,
        queue_capacity: 8,
        // the tight watermark is what bounds admitted-request latency:
        // at most 1 queued ahead, no batch-mates, no degraded
        // (slower-per-volume) blocks in this phase
        admission_watermark: 1,
        max_batch: 1,
        block,
        ..ServeConfig::default()
    };
    let n = if smoke { 60 } else { 400 };
    let service = Duration::from_secs_f64(p50_idle);
    // baseline: 0.5× capacity — the queue never builds, so this is
    // the uncontended p99 as seen through the open-loop harness
    let (base_lat, _) = open_loop(&net, tight.clone(), &input, 2 * service / workers as u32, n);
    let p99_base = percentile(&base_lat, 0.99);
    // overload: 2× what the workers can drain
    let (over_lat, over_stats) =
        open_loop(&net, tight, &input, service / workers as u32 / 2, n);
    let (p50_over, p99_over) = (percentile(&over_lat, 0.50), percentile(&over_lat, 0.99));
    let shed_rate = over_stats.shed_rate();
    let p99_ratio = p99_over / p99_base;
    let shed_under_overload = shed_rate > 0.0;
    let p99_bounded = p99_ratio <= 3.0;
    if !shed_under_overload {
        failures.push("overload did not shed (watermark never fired)");
    }
    if !p99_bounded {
        failures.push("admitted p99 exceeded 3x the uncontended p99");
    }
    println!("\n# overload at 2x capacity (watermark 1, baseline at 0.5x)\n");
    header(&["p50 s", "p99 s", "baseline p99 s", "shed rate", "p99 ratio"]);
    row(&[
        fmt(p50_over),
        fmt(p99_over),
        fmt(p99_base),
        format!("{:.1}%", 100.0 * shed_rate),
        format!("{p99_ratio:.2}"),
    ]);
    json.push_str("  \"overload\": {\n");
    let _ = writeln!(json, "    \"p50_s\": {p50_over:.6e},");
    let _ = writeln!(json, "    \"p99_s\": {p99_over:.6e},");
    let _ = writeln!(json, "    \"p99_baseline_s\": {p99_base:.6e},");
    let _ = writeln!(json, "    \"shed_rate\": {shed_rate:.4},");
    let _ = writeln!(json, "    \"p99_ratio\": {p99_ratio:.3},");
    let _ = writeln!(json, "    \"shed_under_overload\": {shed_under_overload},");
    let _ = writeln!(json, "    \"p99_bounded\": {p99_bounded}");
    json.push_str("  },\n");

    // --- degradation ladder under pressure --------------------------
    let (degraded_batches, degrade_shed_rate) = {
        let cfg = ServeConfig {
            workers,
            queue_capacity: 8,
            admission_watermark: 6,
            degrade_watermark: Some(2),
            block,
            ..ServeConfig::default()
        };
        let dn = if smoke { 40 } else { 150 };
        let (_, stats) = open_loop(&net, cfg, &input, service / workers as u32 / 2, dn);
        (stats.degraded_batches, stats.shed_rate())
    };
    let ladder_engaged = degraded_batches > 0;
    if !ladder_engaged {
        failures.push("degradation ladder never engaged under pressure");
    }
    println!("\n# degradation ladder (degrade at 2, shed at 6)\n");
    header(&["degraded batches", "shed rate", "ladder engaged"]);
    row(&[
        degraded_batches.to_string(),
        format!("{:.1}%", 100.0 * degrade_shed_rate),
        ladder_engaged.to_string(),
    ]);
    json.push_str("  \"degrade\": {\n");
    let _ = writeln!(json, "    \"degraded_batches\": {degraded_batches},");
    let _ = writeln!(json, "    \"shed_rate\": {degrade_shed_rate:.4},");
    let _ = writeln!(json, "    \"ladder_engaged\": {ladder_engaged}");
    json.push_str("  },\n");

    // pool baseline once every size class is warm: the uncontended and
    // overload phases leased the full-block windows, the degradation
    // phase the half-block ones; nothing after this may grow the pool
    let resident_baseline = pools.resident_bytes();

    // --- fault mix under deadlines ----------------------------------
    let fault_stats = {
        let slow = Duration::from_millis(40);
        let plan = Arc::new(
            FaultPlan::new()
                .every_n(FaultKind::SlowTask, 5, 5)
                .every_n(FaultKind::TaskPanic, 7, 7)
                .chance(FaultKind::RejectLease, 100, 42),
        );
        let server = Server::start(
            Arc::clone(&net),
            ServeConfig {
                workers,
                faults: Some(Arc::clone(&plan)),
                slow_task: slow,
                block,
                ..ServeConfig::default()
            },
        );
        let n = if smoke { 25 } else { 80 };
        // injected panics are the test subject, not noise worth a
        // backtrace per occurrence
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        // the injection plan is deterministic and ids are sequential
        // from 1, so every request's expected typed outcome is known:
        // RejectLease (seeded) wins at submit, then TaskPanic (every
        // 7th) preempts SlowTask (every 5th, which stalls past the
        // budget and must cancel mid-volume), else completion
        let mut mismatched = 0usize;
        for i in 0..n {
            let id = i + 1;
            // budget sized so only SlowTask-stalled requests miss it
            let outcome = match server.submit(input.clone(), Some(slow / 2)) {
                Ok(ticket) => ticket.wait(),
                Err(e) => Err(e),
            };
            let as_expected = match outcome {
                Err(Rejected::LeaseRefused) => true, // seeded coin, submit-time
                Err(Rejected::Panicked { .. }) => id % 7 == 0,
                Err(Rejected::DeadlineExceeded { blocks_done, blocks_total }) => {
                    id % 5 == 0 && id % 7 != 0 && blocks_done >= 1 && blocks_done < blocks_total
                }
                Ok(out) => {
                    (id % 5 != 0 && id % 7 != 0)
                        && Some(out.shape()) == net.output_shape_for(in_shape)
                }
                Err(e) => panic!("unexpected rejection in fault phase: {e}"),
            };
            if !as_expected {
                mismatched += 1;
            }
        }
        let stats = server.shutdown();
        std::panic::set_hook(prev_hook);
        let reconciled = stats.completed
            + stats.deadline_missed
            + stats.panicked
            + stats.lease_refused
            == stats.submitted
            && stats.submitted == n;
        let survived = mismatched == 0
            && reconciled
            && stats.deadline_missed > 0
            && stats.panicked > 0
            && stats.lease_refused == plan.fired_of(FaultKind::RejectLease) as u64
            && stats.panicked == plan.fired_of(FaultKind::TaskPanic) as u64;
        if !survived {
            failures.push("fault mix not survived with reconciled counters");
        }
        println!("\n# fault mix under deadlines ({n} requests)\n");
        header(&[
            "completed",
            "deadline missed",
            "panicked",
            "lease refused",
            "survived",
        ]);
        row(&[
            stats.completed.to_string(),
            stats.deadline_missed.to_string(),
            stats.panicked.to_string(),
            stats.lease_refused.to_string(),
            survived.to_string(),
        ]);
        json.push_str("  \"faults\": {\n");
        let _ = writeln!(json, "    \"requests\": {n},");
        let _ = writeln!(json, "    \"completed\": {},", stats.completed);
        let _ = writeln!(json, "    \"deadline_missed\": {},", stats.deadline_missed);
        let _ = writeln!(
            json,
            "    \"deadline_miss_rate\": {:.4},",
            stats.deadline_miss_rate()
        );
        let _ = writeln!(json, "    \"panicked\": {},", stats.panicked);
        let _ = writeln!(json, "    \"lease_refused\": {},", stats.lease_refused);
        let _ = writeln!(json, "    \"survived\": {survived}");
        json.push_str("  },\n");
        stats
    };
    let _ = fault_stats;

    // --- flat memory + zero leaks -----------------------------------
    // all three phases served the same input shape through the same
    // pool, so resident bytes must not have grown past the baseline
    drop(input);
    drop(net);
    let resident_end = pools.resident_bytes();
    let leaked = pools.stats().bytes_in_use();
    let resident_flat = resident_end <= resident_baseline;
    if !resident_flat {
        failures.push("pool resident bytes grew after the first traffic phase");
    }
    if leaked != 0 {
        failures.push("pooled bytes still leased after shutdown — leak");
    }
    println!("\n# pool custody and resident flatness\n");
    header(&["baseline resident", "final resident", "leaked bytes", "flat"]);
    row(&[
        resident_baseline.to_string(),
        resident_end.to_string(),
        leaked.to_string(),
        resident_flat.to_string(),
    ]);
    json.push_str("  \"pool\": {\n");
    let _ = writeln!(json, "    \"resident_baseline_bytes\": {resident_baseline},");
    let _ = writeln!(json, "    \"resident_end_bytes\": {resident_end},");
    let _ = writeln!(json, "    \"resident_flat\": {resident_flat},");
    let _ = writeln!(json, "    \"pool_leaked_bytes\": {leaked}");
    json.push_str("  },\n");
    let verdict = failures.is_empty();
    let _ = writeln!(json, "  \"verdict\": {verdict}");
    json.push_str("}\n");

    println!(
        "\nshape check: the server sheds typed at the watermark instead of\n\
         letting p99 collapse, cancels expired requests mid-volume with\n\
         every lease returned, contains panics per request, and serves\n\
         the whole soak out of a flat pool."
    );

    match std::fs::write("BENCH_serve.json", &json) {
        Ok(()) => println!("\nwrote BENCH_serve.json"),
        Err(e) => {
            // fail loudly: CI greps the file for these fields, and a
            // swallowed write error would let that check pass vacuously
            eprintln!("\ncould not write BENCH_serve.json: {e}");
            std::process::exit(1);
        }
    }
    if !verdict {
        for f in &failures {
            eprintln!("FAILED VERDICT: {f}");
        }
        std::process::exit(1);
    }
}
