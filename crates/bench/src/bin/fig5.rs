//! Fig 5 — speedup vs number of worker threads, 2D (top row) and 3D
//! (bottom row), one column per Table V machine, one line per network
//! width.
//!
//! The four paper machines are reproduced by the discrete-event
//! simulator executing the real task graph under the real priority
//! policy (see DESIGN.md for the substitution argument). Pass
//! `--host` to also measure true wall-clock speedup on this machine's
//! threads with the real engine (only meaningful on multi-core hosts).

use znn_graph::builder::{scalability_net_2d, scalability_net_3d};
use znn_sim::costs::task_costs;
use znn_sim::{simulate, Machine, SimConfig};
use znn_tensor::Vec3;
use znn_theory::flops::ConvAlgorithm;

fn thread_grid(max: usize) -> Vec<usize> {
    let mut v = vec![1, 2, 4];
    let mut t = 8;
    while t < max {
        v.push(t);
        t += max.div_ceil(16).max(4);
    }
    v.push(max);
    v.dedup();
    v
}

fn main() {
    let host = std::env::args().any(|a| a == "--host");
    // paper widths 5..120; trimmed grid keeps runtime sane
    let widths = [5usize, 10, 20, 40, 80, 120];

    for (dim, algo, out_shape) in [
        ("2D", ConvAlgorithm::Fft, Vec3::flat(48, 48)),
        ("3D", ConvAlgorithm::Direct, Vec3::cube(12)),
    ] {
        println!("# Fig 5 — {dim} networks ({algo:?} convolution)\n");
        for machine in Machine::table_v() {
            println!("## {}", machine.name);
            for &w in &widths {
                let (g, _) = if dim == "2D" {
                    scalability_net_2d(w)
                } else {
                    scalability_net_3d(w)
                };
                let (tg, costs) = task_costs(&g, out_shape, algo, true).unwrap();
                let series: Vec<String> = thread_grid(machine.hw_threads)
                    .into_iter()
                    .map(|workers| {
                        let r = simulate(
                            &tg,
                            &costs,
                            &machine,
                            &SimConfig {
                                workers,
                                rounds: 2,
                                ..Default::default()
                            },
                        );
                        format!("{workers}:{:.1}", r.speedup)
                    })
                    .collect();
                println!("width {w:>3}: {}", series.join("  "));
            }
            println!();
        }
    }

    if host {
        host_measurement();
    } else {
        println!("(run with --host to measure real threads on this machine)");
    }
}

/// Real-thread measurement with the actual engine — the counterpart of
/// the paper's hardware runs. On a single-core host this necessarily
/// prints ~1x for every worker count.
fn host_measurement() {
    use znn_core::{ConvPolicy, TrainConfig, Znn};
    use znn_tensor::ops;
    println!("\n# Host measurement (real engine, real threads)\n");
    let max = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let out = Vec3::cube(4);
    for &w in &[4usize, 8] {
        let (g, _) = scalability_net_3d(w);
        let mut serial_time = None;
        let mut line = format!("width {w:>2}: ");
        for workers in [1usize, 2, 4, max].into_iter().filter(|&x| x <= max) {
            let cfg = TrainConfig {
                workers,
                conv: ConvPolicy::ForceDirect,
                ..TrainConfig::test_default(workers)
            };
            let znn = Znn::new(g.clone(), out, cfg).unwrap();
            let x = ops::random(znn.input_shape(), 1);
            let t = ops::random(out, 2);
            let dt = znn_bench::time_per_round(2, 5, || {
                znn.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t));
            });
            let base = *serial_time.get_or_insert(dt);
            line.push_str(&format!("{workers}:{:.2}  ", base / dt));
        }
        println!("{line}");
    }
}
