//! Fault soak — fault-tolerance telemetry for the recovery layer:
//!
//! * `"checkpoint"` — durable-snapshot cost: seconds to write one
//!   atomic CRC-checked checkpoint (tmp + fsync + rename + prune) and
//!   to restore the newest valid one, plus its on-disk size. This is
//!   the price of `--checkpoint-every`, paid once per interval.
//! * `"overhead"` — per-round cost of the recoverable driver: the same
//!   training run under `Trainer::run` vs `Trainer::run_recoverable`
//!   with checkpoints every 5 rounds. The delta bounds what the health
//!   sentinels + last-good capture + periodic snapshots add to every
//!   round (`overhead_pct_round`).
//! * `"faults"` — one record per fault class (`task_panic`,
//!   `lease_fail`, `nan_poke`, `crash`) injected mid-run through a
//!   deterministic `FaultPlan`: did training survive to the requested
//!   round count, and what did the recovery cost over a clean run
//!   (`recovery_s`)? The crash record times the checkpoint `resume()`
//!   instead, since its recovery is a fresh process.
//! * `"pool"` — pooled-buffer conservation under unwinding: after a
//!   run whose injected panic unwound mid-round, every leased buffer
//!   must be back in pool custody (`pool_leaked_bytes` = 0).
//!
//! Emits `BENCH_fault.json` with every number so the fault-tolerance
//! cost trajectory is tracked across PRs. `--smoke` shrinks the net
//! and round count (CI keeps the recovery paths from rotting without
//! paying for the full soak).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;
use znn_alloc::PoolSet;
use znn_bench::{fmt, header, row, time_per_round};
use znn_core::{
    latest_valid, Checkpoint, CheckpointConfig, ConvPolicy, RandomDataset, TrainConfig,
    TrainOutcome, Trainer, Znn,
};
use znn_fault::{FaultKind, FaultPlan};
use znn_graph::NetBuilder;
use znn_ops::Transfer;
use znn_tensor::Vec3;

struct FaultRecord {
    kind: &'static str,
    survived: bool,
    clean_s: f64,
    faulted_s: f64,
    recovery_s: f64,
    resume_s: Option<f64>,
}

/// The one knob set: net width/rounds scale with `--smoke`, everything
/// else (momentum so velocities are non-trivial, direct conv + no
/// memoization for bit-determinism, 2 workers so containment really
/// crosses threads) is pinned.
struct Soak {
    out: usize,
    rounds: u64,
}

impl Soak {
    fn znn(
        &self,
        pools: Option<Arc<PoolSet>>,
        checkpoint: Option<CheckpointConfig>,
        faults: Option<Arc<FaultPlan>>,
    ) -> Znn {
        let (g, _) = NetBuilder::new("soak", 1)
            .conv(2, Vec3::cube(2))
            .transfer(Transfer::Tanh)
            .conv(1, Vec3::cube(2))
            .build()
            .expect("soak net builds");
        let cfg = TrainConfig {
            workers: 2,
            momentum: 0.9,
            conv: ConvPolicy::ForceDirect,
            memoize_fft: false,
            pools,
            checkpoint,
            faults,
            ..TrainConfig::default()
        };
        Znn::new(g, Vec3::cube(self.out), cfg).expect("soak net sizes")
    }

    fn data(&self, znn: &Znn) -> RandomDataset {
        RandomDataset {
            input_shape: znn.input_shape(),
            output_shape: Vec3::cube(self.out),
            inputs: 1,
            outputs: 1,
            seed: 7,
        }
    }

    /// Runs `rounds` recoverable rounds on a fresh engine with the
    /// given plan; returns (outcome, seconds).
    fn timed_run(
        &self,
        pools: Option<Arc<PoolSet>>,
        checkpoint: Option<CheckpointConfig>,
        faults: Option<Arc<FaultPlan>>,
    ) -> (Result<TrainOutcome, znn_core::TrainError>, f64) {
        let znn = self.znn(pools, checkpoint, faults);
        let mut trainer = Trainer::new(&znn, self.data(&znn));
        let start = Instant::now();
        let outcome = trainer.run_recoverable(self.rounds, self.rounds, |_| {});
        (outcome, start.elapsed().as_secs_f64())
    }
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("znn-fault-soak-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let soak = Soak {
        out: if smoke { 2 } else { 4 },
        rounds: if smoke { 8 } else { 24 },
    };
    let rounds = soak.rounds;
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"rounds\": {rounds},");

    // --- checkpoint cost: one atomic durable write, one restore -----
    let ckpt_dir = tmpdir("ckpt");
    {
        let znn = soak.znn(None, None, None);
        let mut trainer = Trainer::new(&znn, soak.data(&znn));
        trainer.run(3, 3, |_| {});
        let ckpt = Checkpoint {
            round: trainer.rounds_done(),
            params: znn.params(),
            velocities: znn.optimizer_state(),
        };
        let (warm, reps) = if smoke { (1, 5) } else { (2, 20) };
        let write_s = time_per_round(warm, reps, || {
            ckpt.write_atomic(&ckpt_dir, 3).expect("checkpoint writes");
        });
        let restore_s = time_per_round(warm, reps, || {
            let restored = latest_valid(&ckpt_dir).expect("checkpoint dir reads");
            assert!(restored.is_some_and(|c| c.round == ckpt.round));
        });
        let bytes = std::fs::read_dir(&ckpt_dir)
            .expect("checkpoint dir lists")
            .filter_map(|e| e.ok()?.metadata().ok())
            .map(|m| m.len())
            .max()
            .unwrap_or(0);
        println!("# fault soak — checkpoint cost\n");
        header(&["snapshot bytes", "write s", "restore s"]);
        row(&[bytes.to_string(), fmt(write_s), fmt(restore_s)]);
        json.push_str("  \"checkpoint\": {\n");
        let _ = writeln!(json, "    \"bytes\": {bytes},");
        let _ = writeln!(json, "    \"checkpoint_write_s\": {write_s:.6e},");
        let _ = writeln!(json, "    \"checkpoint_restore_s\": {restore_s:.6e}");
        json.push_str("  },\n");
    }
    let _ = std::fs::remove_dir_all(&ckpt_dir);

    // --- recoverable-driver overhead per round ----------------------
    {
        let plain_s = {
            let znn = soak.znn(None, None, None);
            let mut trainer = Trainer::new(&znn, soak.data(&znn));
            let start = Instant::now();
            trainer.run(rounds, rounds, |_| {});
            start.elapsed().as_secs_f64() / rounds as f64
        };
        let dir = tmpdir("overhead");
        let mut cc = CheckpointConfig::new(&dir);
        cc.every = 5;
        let (outcome, total_s) = soak.timed_run(None, Some(cc), None);
        assert!(
            matches!(outcome, Ok(TrainOutcome::Completed { .. })),
            "overhead run must complete"
        );
        let _ = std::fs::remove_dir_all(&dir);
        let rec_s = total_s / rounds as f64;
        let overhead_pct = (rec_s / plain_s - 1.0) * 100.0;
        println!("\n# recoverable driver vs plain loop ({rounds} rounds, checkpoint every 5)\n");
        header(&["plain s/round", "recoverable s/round", "overhead"]);
        row(&[
            fmt(plain_s),
            fmt(rec_s),
            format!("{overhead_pct:.1}%"),
        ]);
        json.push_str("  \"overhead\": {\n");
        let _ = writeln!(json, "    \"plain_round_s\": {plain_s:.6e},");
        let _ = writeln!(json, "    \"recoverable_round_s\": {rec_s:.6e},");
        let _ = writeln!(json, "    \"overhead_pct_round\": {overhead_pct:.2}");
        json.push_str("  },\n");
    }

    // --- per-fault-class recovery ------------------------------------
    let mid = (rounds / 2).max(1);
    let (_, clean_s) = {
        let r = soak.timed_run(None, None, None);
        assert!(matches!(r.0, Ok(TrainOutcome::Completed { .. })));
        r
    };
    let mut records: Vec<FaultRecord> = Vec::new();
    for kind in [FaultKind::TaskPanic, FaultKind::LeaseFail, FaultKind::NanPoke] {
        let plan = Arc::new(FaultPlan::new().arm(kind, mid));
        // LeaseFail fires at a pooled lease site, so that run keeps a
        // pool; the others run pool-free to stay minimal.
        let pools = (kind == FaultKind::LeaseFail).then(PoolSet::new);
        let (outcome, faulted_s) = soak.timed_run(pools, None, Some(Arc::clone(&plan)));
        let survived =
            matches!(outcome, Ok(TrainOutcome::Completed { .. })) && plan.fired() == 1;
        records.push(FaultRecord {
            kind: kind.name(),
            survived,
            clean_s,
            faulted_s,
            recovery_s: (faulted_s - clean_s).max(0.0),
            resume_s: None,
        });
    }
    {
        // crash: run dies between rounds with snapshots on disk; a
        // fresh engine resumes from them and finishes the budget
        let dir = tmpdir("crash");
        let mut cc = CheckpointConfig::new(&dir);
        cc.every = 1;
        let plan = Arc::new(FaultPlan::new().crash_after(mid));
        let (outcome, faulted_s) =
            soak.timed_run(None, Some(cc.clone()), Some(Arc::clone(&plan)));
        let interrupted = matches!(outcome, Ok(TrainOutcome::Interrupted { at_round }) if at_round == mid);
        let znn = soak.znn(None, Some(cc), None);
        let mut trainer = Trainer::new(&znn, soak.data(&znn));
        let start = Instant::now();
        let resumed = trainer.resume().expect("resume reads checkpoint dir");
        let resume_s = start.elapsed().as_secs_f64();
        let finished = trainer.run_recoverable(rounds - mid, rounds, |_| {});
        let survived = interrupted
            && resumed == Some(mid)
            && matches!(finished, Ok(TrainOutcome::Completed { .. }));
        let _ = std::fs::remove_dir_all(&dir);
        records.push(FaultRecord {
            kind: FaultKind::Crash.name(),
            survived,
            clean_s,
            faulted_s,
            recovery_s: resume_s,
            resume_s: Some(resume_s),
        });
    }
    {
        // recurring: the same fault class on a schedule, not a one-shot
        // — every third round is poisoned, each poisoned round rolls
        // back and retries, and the consecutive-failure counter resets
        // between firings, so training survives all of them
        let expected = (rounds / 3) as usize;
        let plan = Arc::new(FaultPlan::new().every_n(FaultKind::TaskPanic, 3, 3));
        let (outcome, faulted_s) = soak.timed_run(None, None, Some(Arc::clone(&plan)));
        let survived =
            matches!(outcome, Ok(TrainOutcome::Completed { .. })) && plan.fired() == expected;
        records.push(FaultRecord {
            kind: "task_panic_recurring",
            survived,
            clean_s,
            faulted_s,
            recovery_s: (faulted_s - clean_s).max(0.0),
            resume_s: None,
        });
    }
    let faults_survived = records.iter().filter(|r| r.survived).count();
    println!(
        "\n# injected faults — one per class at round {mid} of {rounds}, \
         plus task_panic recurring every 3 rounds\n"
    );
    header(&["fault", "survived", "clean s", "faulted s", "recovery s"]);
    for r in &records {
        row(&[
            r.kind.to_string(),
            r.survived.to_string(),
            fmt(r.clean_s),
            fmt(r.faulted_s),
            fmt(r.recovery_s),
        ]);
    }
    json.push_str("  \"faults\": [\n");
    let recs: Vec<String> = records
        .iter()
        .map(|r| {
            let mut s = format!(
                "    {{\"kind\": \"{}\", \"survived\": {}, \"clean_s\": {:.6e}, \
                 \"faulted_s\": {:.6e}, \"recovery_s\": {:.6e}",
                r.kind, r.survived, r.clean_s, r.faulted_s, r.recovery_s
            );
            if let Some(resume_s) = r.resume_s {
                let _ = write!(s, ", \"resume_s\": {resume_s:.6e}");
            }
            s.push('}');
            s
        })
        .collect();
    json.push_str(&recs.join(",\n"));
    json.push_str("\n  ],\n");
    let _ = writeln!(json, "  \"faults_survived\": {faults_survived},");

    // --- pooled-buffer conservation under unwinding ------------------
    {
        let pools = PoolSet::new();
        let plan = Arc::new(FaultPlan::new().task_panic_at(mid).lease_fail_at(mid + 1));
        let (outcome, _) = soak.timed_run(Some(Arc::clone(&pools)), None, Some(plan));
        assert!(
            matches!(outcome, Ok(TrainOutcome::Completed { .. })),
            "pool-conservation run must complete"
        );
        // the engine is dropped inside timed_run; every lease must be home
        let leaked = pools.stats().bytes_in_use();
        let resident = pools.resident_bytes();
        println!("\n# pool custody after injected panics\n");
        header(&["leaked bytes", "resident bytes"]);
        row(&[leaked.to_string(), resident.to_string()]);
        if leaked != 0 {
            println!("\nWARNING: {leaked} bytes still leased after unwinding — leak!");
        }
        json.push_str("  \"pool\": {\n");
        let _ = writeln!(json, "    \"pool_leaked_bytes\": {leaked},");
        let _ = writeln!(json, "    \"pool_resident_bytes\": {resident}");
        json.push_str("  }\n");
    }
    json.push_str("}\n");

    println!(
        "\nshape check: all {} fault classes survive ({faults_survived} did) and zero\n\
         pooled bytes stay leased after a mid-round unwind. The driver\n\
         overhead is fsync-dominated on this microsecond-round soak net;\n\
         on real nets (rounds of seconds) the same absolute cost amortizes\n\
         to well under a percent.",
        records.len()
    );

    match std::fs::write("BENCH_fault.json", &json) {
        Ok(()) => println!("\nwrote BENCH_fault.json"),
        Err(e) => {
            // fail loudly: CI greps the file for these fields, and a
            // swallowed write error would let that check pass vacuously
            // against a stale committed copy
            eprintln!("\ncould not write BENCH_fault.json: {e}");
            std::process::exit(1);
        }
    }
}
