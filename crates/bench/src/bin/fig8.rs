//! Fig 8 — ZNN vs the layerwise direct-convolution baseline, 2D
//! networks, seconds per update as kernel size and output patch vary.
//!
//! The paper ran Caffe/Theano on a Titan X; our comparator is the
//! layer-at-a-time direct-convolution engine (`znn-baseline`) — the
//! algorithmic content of those frameworks (see DESIGN.md). ZNN runs
//! its FFT path with memoization, as its autotuner chose in the paper.
//! Sizes are scaled down from the paper's width-40 nets so the sweep
//! finishes on a laptop; the *crossover shape* is the result: ZNN wins
//! for large kernels, the direct baseline for small ones.

use znn_baseline::LayerwiseNet;
use znn_bench::{fmt, header, row, time_per_round};
use znn_core::{ConvPolicy, TrainConfig, Znn};
use znn_graph::builder::comparison_net;
use znn_ops::Loss;
use znn_tensor::{ops, Vec3};

fn main() {
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // budget-matching: the layerwise baseline's par_iter sweeps run
    // inside `pool.install`, so baseline and engine draw on the same
    // number of threads in one process (no global-pool oversubscription
    // while the ZNN engine's own workers exist)
    let baseline_pool = rayon::ThreadPoolBuilder::new()
        .num_threads(workers)
        .build()
        .expect("baseline pool");
    let width = 4usize;
    let kernels = [4usize, 6, 8, 12];
    let outputs = [1usize, 2, 4, 8];
    println!("# Fig 8 — 2D ConvNets, seconds/update (width {width}, sparse training)\n");
    for &k in &kernels {
        println!("## kernel {k}x{k}");
        header(&["output", "ZNN (FFT) s/update", "layerwise direct s/update", "winner"]);
        for &o in &outputs {
            let out_shape = Vec3::flat(o, o);
            let kernel = Vec3::flat(k, k);
            let pool = Vec3::flat(2, 2);

            // both engines run the same sparse-training network (the
            // pooling net predicts the period-|pool| lattice, exactly
            // the paper's "sparse training" protocol)
            let (g_sparse, _) = comparison_net(width, kernel, pool, false);
            let cfg = TrainConfig {
                workers,
                conv: ConvPolicy::ForceFft,
                memoize_fft: true,
                ..Default::default()
            };
            let znn = Znn::new(g_sparse, out_shape, cfg).unwrap();
            let x = ops::random(znn.input_shape(), 1);
            let t = ops::random(out_shape, 2).map(|v| 0.5 + 0.4 * v);
            let t_znn = time_per_round(1, 3, || {
                znn.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t));
            });

            // baseline: dense training (max-pooling), direct conv,
            // layer-at-a-time parallelism — it predicts the sparse
            // output lattice only, exactly like the GPU baselines
            let (g_dense, _) = comparison_net(width, kernel, pool, false);
            let mut base = LayerwiseNet::new(g_dense, out_shape, 0x5EED).unwrap();
            let bx = ops::random(base.input_shape(), 3);
            let bt = ops::random(out_shape, 4).map(|v| 0.5 + 0.4 * v);
            let t_base = time_per_round(1, 3, || {
                baseline_pool.install(|| {
                    base.train_step(std::slice::from_ref(&bx), std::slice::from_ref(&bt), Loss::Mse, 0.01);
                });
            });

            row(&[
                format!("{o}x{o}"),
                fmt(t_znn),
                fmt(t_base),
                if t_znn < t_base { "ZNN" } else { "baseline" }.into(),
            ]);
        }
        println!();
    }
    println!("shape check: the baseline wins at small kernels; ZNN's FFT path");
    println!("wins as kernels grow (the paper's crossover was ~30x30 against a");
    println!("GPU; against a CPU baseline it comes earlier).");
}
