//! Transform traffic — time and bytes moved per 3D transform: the r2c
//! half-spectrum pipeline vs the full c2c baseline, and the parallel
//! line-transform scaling at 1 / half / all worker threads.
//!
//! The r2c path stores `⌊m/2⌋+1` of `m` packed-axis bins and runs the
//! packed stage at half length, so both the bytes written per forward
//! transform and the transform time should approach half the c2c
//! figures as shapes grow. The "spectrum bytes" column is what every
//! *memoized* spectrum costs for the lifetime of a training round —
//! the paper's main RAM consumer (§IV). The threads table exercises the
//! chunked per-line parallelism of `znn-fft` (the per-axis line loops
//! are embarrassingly parallel across lines).
//!
//! Emits `BENCH_fft.json` with every number so the perf trajectory is
//! tracked across PRs. `--smoke` runs one small size (CI keeps the
//! bench bins from rotting without paying for the full sweep).
//!
//! Three extra sections ride along (all always recorded, so CI can
//! assert their JSON fields):
//!
//! * `"smooth_kernels"` — 3D r2c forward transforms at 5-smooth
//!   non-power-of-two sizes (24³–120³) on the standard engine (whose
//!   line plans are iterative mixed-radix Stockham kernels) vs
//!   `FftEngine::with_recursive_kernels()` (the recursive fallback
//!   they replaced). Before the radix-3/5 stages, 48³ was the slowest
//!   point of the whole sweep; this section keeps that win pinned.
//! * `"padding"` — padded-voxel counts of the 5-smooth `good_shape`
//!   policy vs the 2^k-only `pow2_shape` baseline for a sweep of raw
//!   extents, quoting the savings that justify preferring 5-smooth
//!   candidates.
//! * `"alloc"` — §VII-C pooled-allocator traffic for the per-round
//!   buffer pattern of one FFT convolution: churn bytes moved and
//!   allocations avoided per round, lifetime pool hit rate, and the
//!   resident footprint (which freezes after the first rounds while
//!   churn keeps flowing — the paper's flat-memory property).
//! * `"simd"` — the detected ISA and the SIMD microkernel speedups:
//!   each batched Stockham butterfly radix and each pointwise op timed
//!   dispatched vs pinned-scalar, plus the end-to-end 64³ r2c forward
//!   delta (`FftEngine` default vs `with_scalar_kernels()`). On hosts
//!   without AVX2 both paths run the same code and the speedups read
//!   ~1×; the fields are still recorded.
//!
//! `--spawn-compare` adds the pool-reuse vs spawn-per-call sweep: the
//! same 2-way-split r2c transform timed on the persistent worker pool
//! and on the old spawn-an-OS-thread-per-chunk scope, at 8³–64³ (the
//! split threshold is lowered so even 8³ actually forks). The pool
//! must win at ≤32³, where thread spawn latency rivals the transform
//! itself; both series land in `BENCH_fft.json` under
//! `"spawn_compare"` so the trend is tracked.

use std::fmt::Write as _;
use std::sync::Arc;
use znn_alloc::PoolSet;
use znn_bench::{fmt, header, row, time_per_round};
use znn_fft::{good_shape, pow2_shape, spectra, FftEngine};
use znn_tensor::{ops, Spectrum, Vec3};

struct ThreadPoint {
    threads: usize,
    fwd_s: f64,
    inv_s: f64,
}

struct SpawnPoint {
    n: usize,
    pool_s: f64,
    spawn_s: f64,
}

/// The shared `(warmup, reps)` budget per cube size — one protocol for
/// every section of `BENCH_fft.json`, so committed numbers from
/// different sections of the same run are comparable. Mid-range sizes
/// get 5 reps rather than 3: their numbers are the ones the acceptance
/// criteria and ROADMAP quote, and at 3 reps run-to-run variance was
/// large enough (>2x observed at 60³) to mask real changes.
fn reps_for(n: usize) -> (usize, usize) {
    if n >= 100 {
        (1, 3)
    } else if n >= 48 {
        (1, 5)
    } else {
        (2, 8)
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let spawn_compare = std::env::args().any(|a| a == "--spawn-compare");
    let sizes: &[usize] = if smoke {
        &[16]
    } else {
        &[16, 24, 32, 48, 60, 64, 120]
    };
    let host = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);
    let mut thread_counts = vec![1usize, host.div_ceil(2), host];
    thread_counts.dedup();

    println!("# transform traffic — r2c half-spectrum vs c2c full spectrum\n");
    let engine = FftEngine::with_threads(1);
    header(&[
        "shape",
        "r2c spectrum bytes",
        "c2c spectrum bytes",
        "bytes ratio",
        "r2c fwd s",
        "c2c fwd s",
        "speedup",
    ]);
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"host_threads\": {host},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    json.push_str("  \"sizes\": [\n");
    let mut records: Vec<String> = Vec::new();
    for &n in sizes {
        let m = Vec3::cube(n);
        let img = ops::random(m, 1);
        let spec = engine.rfft3(&img);
        let r2c_bytes = spec.stored_bytes();
        let c2c_bytes = spec.full_bytes();
        let (warm, reps) = reps_for(n);
        let t_r2c = time_per_round(warm, reps, || {
            std::hint::black_box(engine.rfft3(&img));
        });
        let t_c2c = time_per_round(warm, reps, || {
            std::hint::black_box(engine.forward_padded_c2c(&img, m));
        });
        row(&[
            format!("{n}³"),
            r2c_bytes.to_string(),
            c2c_bytes.to_string(),
            format!("{:.3}", r2c_bytes as f64 / c2c_bytes as f64),
            fmt(t_r2c),
            fmt(t_c2c),
            format!("{:.2}x", t_c2c / t_r2c),
        ]);
        // threads sweep on the r2c pipeline (forward + inverse)
        let mut points = Vec::new();
        for &threads in &thread_counts {
            let te = FftEngine::with_threads(threads);
            let fwd_s = time_per_round(warm, reps, || {
                std::hint::black_box(te.rfft3(&img));
            });
            // irfft3 consumes its spectrum, so the clone has to sit in
            // the timed loop — measure it separately and subtract, or
            // the inverse cost would include an allocation+memcpy the
            // in-place c2r path specifically avoids
            let base = te.rfft3(&img);
            let t_clone = time_per_round(warm, reps, || {
                std::hint::black_box(base.clone());
            });
            let inv_s = (time_per_round(warm, reps, || {
                std::hint::black_box(te.irfft3(base.clone()));
            }) - t_clone)
                .max(f64::EPSILON);
            points.push(ThreadPoint {
                threads,
                fwd_s,
                inv_s,
            });
        }
        let mut rec = String::new();
        let _ = write!(
            rec,
            "    {{\"n\": {n}, \"r2c_bytes\": {r2c_bytes}, \"c2c_bytes\": {c2c_bytes}, \
             \"r2c_fwd_s\": {t_r2c:.6e}, \"c2c_fwd_s\": {t_c2c:.6e}, \"threads\": ["
        );
        for (i, p) in points.iter().enumerate() {
            let _ = write!(
                rec,
                "{}{{\"threads\": {}, \"fwd_s\": {:.6e}, \"fwd_tps\": {:.2}, \
                 \"inv_s\": {:.6e}, \"inv_tps\": {:.2}}}",
                if i > 0 { ", " } else { "" },
                p.threads,
                p.fwd_s,
                1.0 / p.fwd_s,
                p.inv_s,
                1.0 / p.inv_s,
            );
        }
        rec.push_str("]}");
        records.push(rec);

        println!("\n  {n}³ r2c transforms/sec by worker threads:");
        header(&["threads", "fwd s", "fwd tps", "inv s", "inv tps"]);
        for p in &points {
            row(&[
                p.threads.to_string(),
                fmt(p.fwd_s),
                format!("{:.2}", 1.0 / p.fwd_s),
                fmt(p.inv_s),
                format!("{:.2}", 1.0 / p.inv_s),
            ]);
        }
        println!();
    }
    json.push_str(&records.join(",\n"));
    json.push_str("\n  ]");

    // 5-smooth kernel comparison: the iterative mixed-radix Stockham
    // path vs the recursive fallback it replaced, at the 3D r2c level.
    // These sizes (2^a·3^b·5^c, not powers of two) were all fallback
    // before the radix-3/5 stages; 48³ was the slowest point in the
    // sweep.
    let smooth_sizes: &[usize] = if smoke { &[12] } else { &[24, 48, 60, 120] };
    let iter_engine = FftEngine::with_threads(1);
    let rec_engine = FftEngine::with_recursive_kernels();
    println!("\n# 5-smooth kernels — iterative Stockham vs recursive fallback (1 thread)\n");
    header(&["shape", "iterative s", "recursive s", "iterative speedup"]);
    json.push_str(",\n  \"smooth_kernels\": [\n");
    let mut recs = Vec::new();
    for &n in smooth_sizes {
        let img = ops::random(Vec3::cube(n), 3);
        let (warm, reps) = reps_for(n);
        let iter_s = time_per_round(warm, reps, || {
            std::hint::black_box(iter_engine.rfft3(&img));
        });
        let rec_s = time_per_round(warm, reps, || {
            std::hint::black_box(rec_engine.rfft3(&img));
        });
        row(&[
            format!("{n}³"),
            fmt(iter_s),
            fmt(rec_s),
            format!("{:.2}x", rec_s / iter_s),
        ]);
        recs.push(format!(
            "    {{\"n\": {n}, \"iter_fwd_s\": {iter_s:.6e}, \"recursive_fwd_s\": {rec_s:.6e}, \
             \"iter_speedup\": {:.2}}}",
            rec_s / iter_s
        ));
    }
    json.push_str(&recs.join(",\n"));
    json.push_str("\n  ]");

    // Padding policy: 5-smooth good_shape vs the 2^k-only baseline —
    // padded voxels are transformed, multiplied, and (memoized) held
    // in RAM for a whole round, so the savings compound.
    let raw_sizes: &[usize] = if smoke {
        &[33, 65]
    } else {
        &[17, 33, 47, 65, 100, 129, 200]
    };
    println!("\n# padding — 5-smooth good_shape vs 2^k-only baseline\n");
    header(&["raw", "good_shape", "voxels", "pow2 shape", "voxels", "saved"]);
    json.push_str(",\n  \"padding\": [\n");
    let mut recs = Vec::new();
    for &n in raw_sizes {
        let raw = Vec3::cube(n);
        let smooth = good_shape(raw);
        let pow2 = pow2_shape(raw);
        let sv = smooth.len();
        let pv = pow2.len();
        row(&[
            format!("{n}³"),
            smooth.to_string(),
            sv.to_string(),
            pow2.to_string(),
            pv.to_string(),
            format!("{:.2}x", pv as f64 / sv as f64),
        ]);
        recs.push(format!(
            "    {{\"n\": {n}, \"smooth_voxels\": {sv}, \"pow2_voxels\": {pv}, \
             \"savings\": {:.2}}}",
            pv as f64 / sv as f64
        ));
    }
    json.push_str(&recs.join(",\n"));
    json.push_str("\n  ]");

    // Allocator traffic (§VII-C): the same per-round FFT-convolution
    // buffer pattern — two padded forward transforms, a derived flip
    // spectrum, a spectrum product, one cropped inverse — run on a
    // pooled engine. Round 0 is the cold footprint; from round ~2 the
    // pool serves every lease by recycling, so churn bytes keep moving
    // while misses and resident bytes freeze. Always recorded, so CI
    // can assert the fields.
    {
        let n = if smoke { 16 } else { 48 };
        let alloc_rounds = 6usize;
        let pools = PoolSet::new();
        let engine = FftEngine::with_threads(1).with_buffer_pools(Arc::clone(&pools));
        let vol = Vec3::cube(n);
        let k = Vec3::cube(3);
        let m = good_shape(vol);
        let x = ops::random(vol, 5);
        let w = ops::random(k, 6);
        println!("\n# alloc — pooled-allocator traffic per FFT-conv round at {n}³\n");
        header(&[
            "round",
            "churn bytes",
            "allocs avoided",
            "misses",
            "resident bytes",
        ]);
        json.push_str(",\n  \"alloc\": {\n");
        let _ = writeln!(json, "    \"n\": {n},");
        json.push_str("    \"rounds\": [\n");
        let mut recs = Vec::new();
        let mut last = (0usize, 0usize, 0usize);
        let mut steady = (0usize, 0usize); // (churn, hits) of the last round
        for round in 0..alloc_rounds {
            let xs = engine.forward_padded(&x, m);
            let ws = engine.forward_padded(&w, m);
            let flip = spectra::flip_spectrum(&ws, k);
            let prod = znn_tensor::ops::mul_s(&xs, &flip);
            let out = engine.inverse_real(
                prod,
                k - Vec3::one(),
                vol.valid_conv(k).expect("kernel fits"),
            );
            std::hint::black_box(&out);
            drop((xs, ws, flip, out));
            let s = pools.stats();
            let churn = s.bytes_leased() - last.0;
            let hits = s.hits() - last.1;
            let misses = s.misses() - last.2;
            last = (s.bytes_leased(), s.hits(), s.misses());
            steady = (churn, hits);
            row(&[
                round.to_string(),
                churn.to_string(),
                hits.to_string(),
                misses.to_string(),
                s.bytes_from_system().to_string(),
            ]);
            recs.push(format!(
                "      {{\"round\": {round}, \"churn_bytes\": {churn}, \"allocs_avoided\": {hits}, \
                 \"misses\": {misses}, \"resident_bytes\": {}}}",
                s.bytes_from_system()
            ));
        }
        json.push_str(&recs.join(",\n"));
        json.push_str("\n    ],\n");
        let _ = writeln!(json, "    \"churn_bytes_round\": {},", steady.0);
        let _ = writeln!(json, "    \"allocs_avoided_round\": {},", steady.1);
        let _ = writeln!(json, "    \"hit_rate\": {:.4},", pools.hit_rate());
        let _ = writeln!(json, "    \"resident_bytes\": {}", pools.resident_bytes());
        json.push_str("  }");
        println!(
            "\nshape check: resident bytes freeze after the first rounds while\n\
             churn keeps flowing — steady-state rounds recycle {} bytes with a\n\
             {:.1}% lifetime hit rate and zero new allocation.",
            steady.0,
            pools.hit_rate() * 100.0
        );
    }

    if spawn_compare {
        // Pool-reuse vs spawn-per-call: identical 2-way-split r2c
        // transforms, chunks queued on the persistent pool vs one
        // fresh OS thread per chunk (the pre-pool shim). The split
        // threshold drops to 1 element so every size really forks —
        // at 8³ the transform is microseconds and thread spawn
        // dominates; the gap should close as n³ grows.
        let cmp_sizes: &[usize] = if smoke { &[8, 16] } else { &[8, 16, 24, 32, 48, 64] };
        let pooled = FftEngine::with_threads(2).par_threshold(1);
        let spawny = FftEngine::with_spawn_per_call(2).par_threshold(1);
        println!("\n# spawn-compare — persistent pool vs spawn-per-call (2-way split)\n");
        header(&["shape", "pool s", "pool tps", "spawn s", "spawn tps", "pool speedup"]);
        let mut points = Vec::new();
        for &n in cmp_sizes {
            let img = ops::random(Vec3::cube(n), 7);
            let (warm, reps) = reps_for(n);
            let pool_s = time_per_round(warm, reps, || {
                std::hint::black_box(pooled.rfft3(&img));
            });
            let spawn_s = time_per_round(warm, reps, || {
                std::hint::black_box(spawny.rfft3(&img));
            });
            row(&[
                format!("{n}³"),
                fmt(pool_s),
                format!("{:.2}", 1.0 / pool_s),
                fmt(spawn_s),
                format!("{:.2}", 1.0 / spawn_s),
                format!("{:.2}x", spawn_s / pool_s),
            ]);
            points.push(SpawnPoint { n, pool_s, spawn_s });
        }
        let losses: Vec<usize> = points
            .iter()
            .filter(|p| p.n <= 32 && p.pool_s > p.spawn_s)
            .map(|p| p.n)
            .collect();
        if losses.is_empty() {
            println!("\ntrend ok: the pool wins at every size ≤ 32³");
        } else {
            println!("\nWARNING: spawn-per-call beat the pool at {losses:?} — regression?");
        }
        json.push_str(",\n  \"spawn_compare\": [\n");
        let recs: Vec<String> = points
            .iter()
            .map(|p| {
                format!(
                    "    {{\"n\": {}, \"pool_fwd_s\": {:.6e}, \"pool_tps\": {:.2}, \
                     \"spawn_fwd_s\": {:.6e}, \"spawn_tps\": {:.2}}}",
                    p.n,
                    p.pool_s,
                    1.0 / p.pool_s,
                    p.spawn_s,
                    1.0 / p.spawn_s,
                )
            })
            .collect();
        json.push_str(&recs.join(",\n"));
        json.push_str("\n  ]");
    }

    // SIMD microkernels: the dispatched vector kernels vs two
    // baselines — true scalar arithmetic (`scalar_s`, the speedup
    // denominator) and the auto-vectorized portable twins
    // (`autovec_s`, the code `ZNN_FORCE_SCALAR` runs) — per butterfly
    // radix family and per pointwise op, then the end-to-end 64³ r2c
    // forward delta. Always recorded so CI can assert the fields; the
    // per-kernel pins are this PR's acceptance numbers.
    {
        use rustfft::{num_complex::Complex, Fft, FftDirection, FftPlanner};

        fn time_plan(plan: &Arc<dyn Fft<f32>>, base: &[Complex<f32>]) -> f64 {
            let mut buf = base.to_vec();
            let mut scratch = vec![Complex::new(0.0f32, 0.0); plan.get_inplace_scratch_len()];
            // best of 4 short rounds, same rationale as the pointwise
            // duel: the min is the only stable estimator on a
            // steal-prone single-vCPU host
            (0..4)
                .map(|_| {
                    time_per_round(1, 2, || {
                        buf.copy_from_slice(base);
                        plan.process_with_scratch(std::hint::black_box(&mut buf), &mut scratch);
                        std::hint::black_box(&buf);
                    })
                })
                .fold(f64::INFINITY, f64::min)
        }

        fn push_kernel(
            name: &str,
            scalar_s: f64,
            autovec_s: f64,
            simd_s: f64,
            recs: &mut Vec<String>,
        ) {
            row(&[
                name.to_string(),
                fmt(scalar_s),
                fmt(autovec_s),
                fmt(simd_s),
                format!("{:.2}x", scalar_s / simd_s),
                format!("{:.2}x", autovec_s / simd_s),
            ]);
            recs.push(format!(
                "      {{\"kernel\": \"{name}\", \"scalar_s\": {scalar_s:.6e}, \
                 \"autovec_s\": {autovec_s:.6e}, \"simd_s\": {simd_s:.6e}, \
                 \"speedup\": {:.2}, \"autovec_speedup\": {:.2}}}",
                scalar_s / simd_s,
                autovec_s / simd_s
            ));
        }

        println!(
            "\n# simd — microkernels ({}) vs scalar arithmetic and the\n\
             # auto-vectorized portable twins (the `ZNN_FORCE_SCALAR` path)\n",
            znn_simd::isa_name()
        );
        header(&[
            "kernel",
            "scalar s",
            "autovec s",
            "simd s",
            "vs scalar",
            "vs autovec",
        ]);
        json.push_str(",\n  \"simd\": {\n");
        let _ = writeln!(json, "    \"isa\": \"{}\",", znn_simd::isa_name());
        let _ = writeln!(json, "    \"forced_scalar\": {},", znn_simd::forced_scalar());
        json.push_str("    \"kernels\": [\n");
        let mut recs = Vec::new();

        // one length per radix family, batched to ~64k elements per
        // call exactly like the 3D engine drives the line plans
        let mut planner = FftPlanner::new();
        for (label, n) in [
            ("radix4_n64", 64usize),
            ("radix3_n27", 27),
            ("radix5_n125", 125),
            ("trailing2_n128", 128),
        ] {
            let lines = (64 * 1024 / n).max(8);
            let base: Vec<Complex<f32>> = (0..lines * n)
                .map(|i| {
                    Complex::new(
                        ops::splitmix_f32(8, i as u64),
                        ops::splitmix_f32(9, i as u64),
                    )
                })
                .collect();
            let simd_plan = planner.plan_fft(n, FftDirection::Forward);
            let scalar_plan = planner.plan_fft_scalar(n, FftDirection::Forward);
            // the scalar butterflies are genuinely one-lane (their
            // dataflow defeats the auto-vectorizer), so the scalar and
            // autovec baselines coincide for the radix rows
            let t_scalar = time_plan(&scalar_plan, &base);
            let t_simd = time_plan(&simd_plan, &base);
            push_kernel(label, t_scalar, t_scalar, t_simd, &mut recs);
        }

        // The pointwise layer, measured compute-bound: an L1-resident
        // working set (1024 complexes = 8 KiB per stream) with K
        // in-place applications per timed round, so the numbers isolate
        // the kernel's ALU throughput rather than DRAM bandwidth (a
        // spectrum-sized streaming sweep reads ~1x for every kernel —
        // both sides sit at the same memory wall). The multiplier is
        // unit-magnitude (e^{iθ}), so repeated in-place products
        // neither decay into denormals nor overflow; the MAC/FMA
        // accumulants grow only linearly in K.
        const PW_N: usize = 1024;
        const PW_K: usize = 256;
        let unit: Vec<Complex<f32>> = (0..PW_N)
            .map(|i| {
                let theta = std::f32::consts::PI * ops::splitmix_f32(10, i as u64);
                Complex::new(theta.cos(), theta.sin())
            })
            .collect();
        let seed_c: Vec<Complex<f32>> = (0..PW_N)
            .map(|i| {
                Complex::new(
                    ops::splitmix_f32(11, i as u64),
                    ops::splitmix_f32(12, i as u64),
                )
            })
            .collect();
        let seed_f: Vec<f32> = seed_c.iter().map(|z| z.re).collect();

        // True one-lane scalar baselines for the `scalar s` column.
        // The portable twins in `znn_simd::scalar` are straight-line
        // loops that LLVM auto-vectorizes to SSE2 at opt-level 3 —
        // that compiled form is what `ZNN_FORCE_SCALAR` actually runs
        // and is recorded in the `autovec` column. To measure scalar
        // *arithmetic* (one lane per instruction — the baseline the
        // paper's SIMD-width argument is stated against), the same
        // per-element operations are walked in an odd-stride order the
        // vectorizer cannot fuse; the stride is a unit mod the
        // power-of-two length, so each pass still touches every
        // element exactly once in the same L1-resident working set.
        fn strict_cmul(dst: &mut [Complex<f32>], src: &[Complex<f32>]) {
            let mask = dst.len() - 1;
            let mut j = 0usize;
            for _ in 0..dst.len() {
                dst[j] *= src[j];
                j = (j + 17) & mask;
            }
        }
        fn strict_conj_mac(acc: &mut [Complex<f32>], x: &[Complex<f32>], g: &[Complex<f32>]) {
            let mask = acc.len() - 1;
            let mut j = 0usize;
            for _ in 0..acc.len() {
                acc[j] += x[j] * g[j].conj();
                j = (j + 17) & mask;
            }
        }
        fn strict_fma(dst: &mut [f32], w: f32, src: &[f32]) {
            let mask = dst.len() - 1;
            let mut j = 0usize;
            for _ in 0..dst.len() {
                dst[j] = w.mul_add(src[j], dst[j]);
                j = (j + 17) & mask;
            }
        }

        #[derive(Clone, Copy)]
        enum Path {
            Simd,
            Autovec,
            Strict,
        }

        // Interleaved best-of-N duel: on a shared/1-core host a single
        // mean swings several-fold run to run; the min over many short
        // alternating trials is the only stable estimator for sub-µs
        // kernels. Returns per-application seconds as
        // `[simd, autovec, strict]`.
        fn duel(mut run: impl FnMut(Path)) -> [f64; 3] {
            let mut best = [f64::INFINITY; 3];
            for _ in 0..9 {
                for (slot, path) in
                    [Path::Simd, Path::Autovec, Path::Strict].into_iter().enumerate()
                {
                    best[slot] = best[slot].min(time_per_round(1, 2, || run(path)));
                }
            }
            best.map(|b| b / PW_K as f64)
        }

        let mut dst_c = seed_c.clone();
        let [simd_s, autovec_s, scalar_s] = duel(|path| {
            for _ in 0..PW_K {
                let d = std::hint::black_box(&mut dst_c);
                match path {
                    Path::Simd => znn_simd::mul_assign_c(d, &unit),
                    Path::Autovec => znn_simd::scalar::mul_assign_c(d, &unit),
                    Path::Strict => strict_cmul(d, &unit),
                }
            }
        });
        push_kernel("pointwise_cmul", scalar_s, autovec_s, simd_s, &mut recs);

        let mut dst_c = seed_c.clone();
        let [simd_s, autovec_s, scalar_s] = duel(|path| {
            for _ in 0..PW_K {
                let d = std::hint::black_box(&mut dst_c);
                match path {
                    Path::Simd => znn_simd::conj_mul_add_assign_c(d, &seed_c, &unit),
                    Path::Autovec => {
                        znn_simd::scalar::conj_mul_add_assign_c(d, &seed_c, &unit)
                    }
                    Path::Strict => strict_conj_mac(d, &seed_c, &unit),
                }
            }
        });
        push_kernel("pointwise_conj_mac", scalar_s, autovec_s, simd_s, &mut recs);

        let mut dst_f = seed_f.clone();
        let [simd_s, autovec_s, scalar_s] = duel(|path| {
            for _ in 0..PW_K {
                let d = std::hint::black_box(&mut dst_f);
                match path {
                    Path::Simd => znn_simd::fma_acc_f(d, 1.0e-3, &seed_f),
                    Path::Autovec => znn_simd::scalar::fma_acc_f(d, 1.0e-3, &seed_f),
                    Path::Strict => strict_fma(d, 1.0e-3, &seed_f),
                }
            }
        });
        push_kernel("conv_fma_row", scalar_s, autovec_s, simd_s, &mut recs);

        json.push_str(&recs.join(",\n"));
        json.push_str("\n    ],\n");

        // end to end: the whole 64³ r2c forward pipeline, default
        // engine vs pinned-scalar kernels on one thread
        let img = ops::random(Vec3::cube(64), 12);
        let simd_engine = FftEngine::with_threads(1);
        let scalar_engine = FftEngine::with_scalar_kernels();
        let (warm, reps) = reps_for(64);
        let simd_fwd = time_per_round(warm, reps, || {
            std::hint::black_box(simd_engine.rfft3(&img));
        });
        let scalar_fwd = time_per_round(warm, reps, || {
            std::hint::black_box(scalar_engine.rfft3(&img));
        });
        // the scalar-kernel engine runs the one-lane butterflies, so
        // scalar and autovec coincide here as in the radix rows
        row(&[
            "e2e_rfft3_64".to_string(),
            fmt(scalar_fwd),
            fmt(scalar_fwd),
            fmt(simd_fwd),
            format!("{:.2}x", scalar_fwd / simd_fwd),
            format!("{:.2}x", scalar_fwd / simd_fwd),
        ]);
        let _ = writeln!(
            json,
            "    \"e2e_64\": {{\"scalar_fwd_s\": {scalar_fwd:.6e}, \
             \"simd_fwd_s\": {simd_fwd:.6e}, \"speedup\": {:.2}}}",
            scalar_fwd / simd_fwd
        );
        json.push_str("  }");
    }
    json.push_str("\n}\n");

    println!("shape check: bytes ratio tends to 1/2 (exactly (⌊n/2⌋+1)/n");
    println!("per packed line) and the r2c transform speedup approaches ~2x");
    println!("on large shapes; with >1 host cores the threaded rows scale");
    println!("transforms/sec with the worker count.");
    // the same half-spectrum bound, stated for one memoized volume
    let m = Vec3::cube(64);
    let half = Spectrum::half_shape(m);
    println!(
        "\nexample: a memoized 64³ spectrum stores {} of {} bins ({} of {} bytes).",
        half.len(),
        m.len(),
        Spectrum::zeros(m).stored_bytes(),
        Spectrum::zeros(m).full_bytes(),
    );

    match std::fs::write("BENCH_fft.json", &json) {
        Ok(()) => println!("\nwrote BENCH_fft.json"),
        Err(e) => {
            // fail loudly: CI greps the file for the spawn-compare
            // fields, and a swallowed write error would let that
            // check pass vacuously against a stale committed copy
            eprintln!("\ncould not write BENCH_fft.json: {e}");
            std::process::exit(1);
        }
    }
}
