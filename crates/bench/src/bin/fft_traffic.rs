//! Transform traffic — time and bytes moved per 3D transform, r2c
//! half-spectrum pipeline vs the full c2c baseline.
//!
//! The r2c path stores `⌊m_z/2⌋+1` of `m_z` z-bins and runs the
//! z-stage at half length, so both the bytes written per forward
//! transform and the transform time should approach half the c2c
//! figures as shapes grow. The "spectrum bytes" column is what every
//! *memoized* spectrum costs for the lifetime of a training round —
//! the paper's main RAM consumer (§IV).

use znn_bench::{fmt, header, row, time_per_round};
use znn_fft::FftEngine;
use znn_tensor::{ops, Spectrum, Vec3};

fn main() {
    println!("# transform traffic — r2c half-spectrum vs c2c full spectrum\n");
    let engine = FftEngine::new();
    header(&[
        "shape",
        "r2c spectrum bytes",
        "c2c spectrum bytes",
        "bytes ratio",
        "r2c fwd s",
        "c2c fwd s",
        "speedup",
    ]);
    for n in [16usize, 24, 32, 48, 64] {
        let m = Vec3::cube(n);
        let img = ops::random(m, 1);
        let spec = engine.rfft3(&img);
        let r2c_bytes = spec.stored_bytes();
        let c2c_bytes = spec.full_bytes();
        let (warm, reps) = if n >= 48 { (1, 3) } else { (2, 8) };
        let t_r2c = time_per_round(warm, reps, || {
            std::hint::black_box(engine.rfft3(&img));
        });
        let t_c2c = time_per_round(warm, reps, || {
            std::hint::black_box(engine.forward_padded_c2c(&img, m));
        });
        row(&[
            format!("{n}³"),
            r2c_bytes.to_string(),
            c2c_bytes.to_string(),
            format!("{:.3}", r2c_bytes as f64 / c2c_bytes as f64),
            fmt(t_r2c),
            fmt(t_c2c),
            format!("{:.2}x", t_c2c / t_r2c),
        ]);
    }
    println!();
    println!("shape check: bytes ratio tends to 1/2 (exactly (⌊n/2⌋+1)/n");
    println!("per z-line) and the r2c transform speedup approaches ~2x on");
    println!("large shapes.");
    // the same half-spectrum bound, stated for one memoized volume
    let m = Vec3::cube(64);
    let half = Spectrum::half_shape(m);
    println!(
        "\nexample: a memoized 64³ spectrum stores {} of {} bins ({} of {} bytes).",
        half.len(),
        m.len(),
        Spectrum::zeros(m).stored_bytes(),
        Spectrum::zeros(m).full_bytes(),
    );
}
