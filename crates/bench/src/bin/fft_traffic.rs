//! Transform traffic — time and bytes moved per 3D transform: the r2c
//! half-spectrum pipeline vs the full c2c baseline, and the parallel
//! line-transform scaling at 1 / half / all worker threads.
//!
//! The r2c path stores `⌊m/2⌋+1` of `m` packed-axis bins and runs the
//! packed stage at half length, so both the bytes written per forward
//! transform and the transform time should approach half the c2c
//! figures as shapes grow. The "spectrum bytes" column is what every
//! *memoized* spectrum costs for the lifetime of a training round —
//! the paper's main RAM consumer (§IV). The threads table exercises the
//! chunked per-line parallelism of `znn-fft` (the per-axis line loops
//! are embarrassingly parallel across lines).
//!
//! Emits `BENCH_fft.json` with every number so the perf trajectory is
//! tracked across PRs. `--smoke` runs one small size (CI keeps the
//! bench bins from rotting without paying for the full sweep).
//!
//! Three extra sections ride along (all always recorded, so CI can
//! assert their JSON fields):
//!
//! * `"smooth_kernels"` — 3D r2c forward transforms at 5-smooth
//!   non-power-of-two sizes (24³–120³) on the standard engine (whose
//!   line plans are iterative mixed-radix Stockham kernels) vs
//!   `FftEngine::with_recursive_kernels()` (the recursive fallback
//!   they replaced). Before the radix-3/5 stages, 48³ was the slowest
//!   point of the whole sweep; this section keeps that win pinned.
//! * `"padding"` — padded-voxel counts of the 5-smooth `good_shape`
//!   policy vs the 2^k-only `pow2_shape` baseline for a sweep of raw
//!   extents, quoting the savings that justify preferring 5-smooth
//!   candidates.
//! * `"alloc"` — §VII-C pooled-allocator traffic for the per-round
//!   buffer pattern of one FFT convolution: churn bytes moved and
//!   allocations avoided per round, lifetime pool hit rate, and the
//!   resident footprint (which freezes after the first rounds while
//!   churn keeps flowing — the paper's flat-memory property).
//!
//! `--spawn-compare` adds the pool-reuse vs spawn-per-call sweep: the
//! same 2-way-split r2c transform timed on the persistent worker pool
//! and on the old spawn-an-OS-thread-per-chunk scope, at 8³–64³ (the
//! split threshold is lowered so even 8³ actually forks). The pool
//! must win at ≤32³, where thread spawn latency rivals the transform
//! itself; both series land in `BENCH_fft.json` under
//! `"spawn_compare"` so the trend is tracked.

use std::fmt::Write as _;
use std::sync::Arc;
use znn_alloc::PoolSet;
use znn_bench::{fmt, header, row, time_per_round};
use znn_fft::{good_shape, pow2_shape, spectra, FftEngine};
use znn_tensor::{ops, Spectrum, Vec3};

struct ThreadPoint {
    threads: usize,
    fwd_s: f64,
    inv_s: f64,
}

struct SpawnPoint {
    n: usize,
    pool_s: f64,
    spawn_s: f64,
}

/// The shared `(warmup, reps)` budget per cube size — one protocol for
/// every section of `BENCH_fft.json`, so committed numbers from
/// different sections of the same run are comparable. Mid-range sizes
/// get 5 reps rather than 3: their numbers are the ones the acceptance
/// criteria and ROADMAP quote, and at 3 reps run-to-run variance was
/// large enough (>2x observed at 60³) to mask real changes.
fn reps_for(n: usize) -> (usize, usize) {
    if n >= 100 {
        (1, 3)
    } else if n >= 48 {
        (1, 5)
    } else {
        (2, 8)
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let spawn_compare = std::env::args().any(|a| a == "--spawn-compare");
    let sizes: &[usize] = if smoke {
        &[16]
    } else {
        &[16, 24, 32, 48, 60, 64, 120]
    };
    let host = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);
    let mut thread_counts = vec![1usize, host.div_ceil(2), host];
    thread_counts.dedup();

    println!("# transform traffic — r2c half-spectrum vs c2c full spectrum\n");
    let engine = FftEngine::with_threads(1);
    header(&[
        "shape",
        "r2c spectrum bytes",
        "c2c spectrum bytes",
        "bytes ratio",
        "r2c fwd s",
        "c2c fwd s",
        "speedup",
    ]);
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"host_threads\": {host},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    json.push_str("  \"sizes\": [\n");
    let mut records: Vec<String> = Vec::new();
    for &n in sizes {
        let m = Vec3::cube(n);
        let img = ops::random(m, 1);
        let spec = engine.rfft3(&img);
        let r2c_bytes = spec.stored_bytes();
        let c2c_bytes = spec.full_bytes();
        let (warm, reps) = reps_for(n);
        let t_r2c = time_per_round(warm, reps, || {
            std::hint::black_box(engine.rfft3(&img));
        });
        let t_c2c = time_per_round(warm, reps, || {
            std::hint::black_box(engine.forward_padded_c2c(&img, m));
        });
        row(&[
            format!("{n}³"),
            r2c_bytes.to_string(),
            c2c_bytes.to_string(),
            format!("{:.3}", r2c_bytes as f64 / c2c_bytes as f64),
            fmt(t_r2c),
            fmt(t_c2c),
            format!("{:.2}x", t_c2c / t_r2c),
        ]);
        // threads sweep on the r2c pipeline (forward + inverse)
        let mut points = Vec::new();
        for &threads in &thread_counts {
            let te = FftEngine::with_threads(threads);
            let fwd_s = time_per_round(warm, reps, || {
                std::hint::black_box(te.rfft3(&img));
            });
            // irfft3 consumes its spectrum, so the clone has to sit in
            // the timed loop — measure it separately and subtract, or
            // the inverse cost would include an allocation+memcpy the
            // in-place c2r path specifically avoids
            let base = te.rfft3(&img);
            let t_clone = time_per_round(warm, reps, || {
                std::hint::black_box(base.clone());
            });
            let inv_s = (time_per_round(warm, reps, || {
                std::hint::black_box(te.irfft3(base.clone()));
            }) - t_clone)
                .max(f64::EPSILON);
            points.push(ThreadPoint {
                threads,
                fwd_s,
                inv_s,
            });
        }
        let mut rec = String::new();
        let _ = write!(
            rec,
            "    {{\"n\": {n}, \"r2c_bytes\": {r2c_bytes}, \"c2c_bytes\": {c2c_bytes}, \
             \"r2c_fwd_s\": {t_r2c:.6e}, \"c2c_fwd_s\": {t_c2c:.6e}, \"threads\": ["
        );
        for (i, p) in points.iter().enumerate() {
            let _ = write!(
                rec,
                "{}{{\"threads\": {}, \"fwd_s\": {:.6e}, \"fwd_tps\": {:.2}, \
                 \"inv_s\": {:.6e}, \"inv_tps\": {:.2}}}",
                if i > 0 { ", " } else { "" },
                p.threads,
                p.fwd_s,
                1.0 / p.fwd_s,
                p.inv_s,
                1.0 / p.inv_s,
            );
        }
        rec.push_str("]}");
        records.push(rec);

        println!("\n  {n}³ r2c transforms/sec by worker threads:");
        header(&["threads", "fwd s", "fwd tps", "inv s", "inv tps"]);
        for p in &points {
            row(&[
                p.threads.to_string(),
                fmt(p.fwd_s),
                format!("{:.2}", 1.0 / p.fwd_s),
                fmt(p.inv_s),
                format!("{:.2}", 1.0 / p.inv_s),
            ]);
        }
        println!();
    }
    json.push_str(&records.join(",\n"));
    json.push_str("\n  ]");

    // 5-smooth kernel comparison: the iterative mixed-radix Stockham
    // path vs the recursive fallback it replaced, at the 3D r2c level.
    // These sizes (2^a·3^b·5^c, not powers of two) were all fallback
    // before the radix-3/5 stages; 48³ was the slowest point in the
    // sweep.
    let smooth_sizes: &[usize] = if smoke { &[12] } else { &[24, 48, 60, 120] };
    let iter_engine = FftEngine::with_threads(1);
    let rec_engine = FftEngine::with_recursive_kernels();
    println!("\n# 5-smooth kernels — iterative Stockham vs recursive fallback (1 thread)\n");
    header(&["shape", "iterative s", "recursive s", "iterative speedup"]);
    json.push_str(",\n  \"smooth_kernels\": [\n");
    let mut recs = Vec::new();
    for &n in smooth_sizes {
        let img = ops::random(Vec3::cube(n), 3);
        let (warm, reps) = reps_for(n);
        let iter_s = time_per_round(warm, reps, || {
            std::hint::black_box(iter_engine.rfft3(&img));
        });
        let rec_s = time_per_round(warm, reps, || {
            std::hint::black_box(rec_engine.rfft3(&img));
        });
        row(&[
            format!("{n}³"),
            fmt(iter_s),
            fmt(rec_s),
            format!("{:.2}x", rec_s / iter_s),
        ]);
        recs.push(format!(
            "    {{\"n\": {n}, \"iter_fwd_s\": {iter_s:.6e}, \"recursive_fwd_s\": {rec_s:.6e}, \
             \"iter_speedup\": {:.2}}}",
            rec_s / iter_s
        ));
    }
    json.push_str(&recs.join(",\n"));
    json.push_str("\n  ]");

    // Padding policy: 5-smooth good_shape vs the 2^k-only baseline —
    // padded voxels are transformed, multiplied, and (memoized) held
    // in RAM for a whole round, so the savings compound.
    let raw_sizes: &[usize] = if smoke {
        &[33, 65]
    } else {
        &[17, 33, 47, 65, 100, 129, 200]
    };
    println!("\n# padding — 5-smooth good_shape vs 2^k-only baseline\n");
    header(&["raw", "good_shape", "voxels", "pow2 shape", "voxels", "saved"]);
    json.push_str(",\n  \"padding\": [\n");
    let mut recs = Vec::new();
    for &n in raw_sizes {
        let raw = Vec3::cube(n);
        let smooth = good_shape(raw);
        let pow2 = pow2_shape(raw);
        let sv = smooth.len();
        let pv = pow2.len();
        row(&[
            format!("{n}³"),
            smooth.to_string(),
            sv.to_string(),
            pow2.to_string(),
            pv.to_string(),
            format!("{:.2}x", pv as f64 / sv as f64),
        ]);
        recs.push(format!(
            "    {{\"n\": {n}, \"smooth_voxels\": {sv}, \"pow2_voxels\": {pv}, \
             \"savings\": {:.2}}}",
            pv as f64 / sv as f64
        ));
    }
    json.push_str(&recs.join(",\n"));
    json.push_str("\n  ]");

    // Allocator traffic (§VII-C): the same per-round FFT-convolution
    // buffer pattern — two padded forward transforms, a derived flip
    // spectrum, a spectrum product, one cropped inverse — run on a
    // pooled engine. Round 0 is the cold footprint; from round ~2 the
    // pool serves every lease by recycling, so churn bytes keep moving
    // while misses and resident bytes freeze. Always recorded, so CI
    // can assert the fields.
    {
        let n = if smoke { 16 } else { 48 };
        let alloc_rounds = 6usize;
        let pools = PoolSet::new();
        let engine = FftEngine::with_threads(1).with_buffer_pools(Arc::clone(&pools));
        let vol = Vec3::cube(n);
        let k = Vec3::cube(3);
        let m = good_shape(vol);
        let x = ops::random(vol, 5);
        let w = ops::random(k, 6);
        println!("\n# alloc — pooled-allocator traffic per FFT-conv round at {n}³\n");
        header(&[
            "round",
            "churn bytes",
            "allocs avoided",
            "misses",
            "resident bytes",
        ]);
        json.push_str(",\n  \"alloc\": {\n");
        let _ = writeln!(json, "    \"n\": {n},");
        json.push_str("    \"rounds\": [\n");
        let mut recs = Vec::new();
        let mut last = (0usize, 0usize, 0usize);
        let mut steady = (0usize, 0usize); // (churn, hits) of the last round
        for round in 0..alloc_rounds {
            let xs = engine.forward_padded(&x, m);
            let ws = engine.forward_padded(&w, m);
            let flip = spectra::flip_spectrum(&ws, k);
            let prod = znn_tensor::ops::mul_s(&xs, &flip);
            let out = engine.inverse_real(
                prod,
                k - Vec3::one(),
                vol.valid_conv(k).expect("kernel fits"),
            );
            std::hint::black_box(&out);
            drop((xs, ws, flip, out));
            let s = pools.stats();
            let churn = s.bytes_leased() - last.0;
            let hits = s.hits() - last.1;
            let misses = s.misses() - last.2;
            last = (s.bytes_leased(), s.hits(), s.misses());
            steady = (churn, hits);
            row(&[
                round.to_string(),
                churn.to_string(),
                hits.to_string(),
                misses.to_string(),
                s.bytes_from_system().to_string(),
            ]);
            recs.push(format!(
                "      {{\"round\": {round}, \"churn_bytes\": {churn}, \"allocs_avoided\": {hits}, \
                 \"misses\": {misses}, \"resident_bytes\": {}}}",
                s.bytes_from_system()
            ));
        }
        json.push_str(&recs.join(",\n"));
        json.push_str("\n    ],\n");
        let _ = writeln!(json, "    \"churn_bytes_round\": {},", steady.0);
        let _ = writeln!(json, "    \"allocs_avoided_round\": {},", steady.1);
        let _ = writeln!(json, "    \"hit_rate\": {:.4},", pools.hit_rate());
        let _ = writeln!(json, "    \"resident_bytes\": {}", pools.resident_bytes());
        json.push_str("  }");
        println!(
            "\nshape check: resident bytes freeze after the first rounds while\n\
             churn keeps flowing — steady-state rounds recycle {} bytes with a\n\
             {:.1}% lifetime hit rate and zero new allocation.",
            steady.0,
            pools.hit_rate() * 100.0
        );
    }

    if spawn_compare {
        // Pool-reuse vs spawn-per-call: identical 2-way-split r2c
        // transforms, chunks queued on the persistent pool vs one
        // fresh OS thread per chunk (the pre-pool shim). The split
        // threshold drops to 1 element so every size really forks —
        // at 8³ the transform is microseconds and thread spawn
        // dominates; the gap should close as n³ grows.
        let cmp_sizes: &[usize] = if smoke { &[8, 16] } else { &[8, 16, 24, 32, 48, 64] };
        let pooled = FftEngine::with_threads(2).par_threshold(1);
        let spawny = FftEngine::with_spawn_per_call(2).par_threshold(1);
        println!("\n# spawn-compare — persistent pool vs spawn-per-call (2-way split)\n");
        header(&["shape", "pool s", "pool tps", "spawn s", "spawn tps", "pool speedup"]);
        let mut points = Vec::new();
        for &n in cmp_sizes {
            let img = ops::random(Vec3::cube(n), 7);
            let (warm, reps) = reps_for(n);
            let pool_s = time_per_round(warm, reps, || {
                std::hint::black_box(pooled.rfft3(&img));
            });
            let spawn_s = time_per_round(warm, reps, || {
                std::hint::black_box(spawny.rfft3(&img));
            });
            row(&[
                format!("{n}³"),
                fmt(pool_s),
                format!("{:.2}", 1.0 / pool_s),
                fmt(spawn_s),
                format!("{:.2}", 1.0 / spawn_s),
                format!("{:.2}x", spawn_s / pool_s),
            ]);
            points.push(SpawnPoint { n, pool_s, spawn_s });
        }
        let losses: Vec<usize> = points
            .iter()
            .filter(|p| p.n <= 32 && p.pool_s > p.spawn_s)
            .map(|p| p.n)
            .collect();
        if losses.is_empty() {
            println!("\ntrend ok: the pool wins at every size ≤ 32³");
        } else {
            println!("\nWARNING: spawn-per-call beat the pool at {losses:?} — regression?");
        }
        json.push_str(",\n  \"spawn_compare\": [\n");
        let recs: Vec<String> = points
            .iter()
            .map(|p| {
                format!(
                    "    {{\"n\": {}, \"pool_fwd_s\": {:.6e}, \"pool_tps\": {:.2}, \
                     \"spawn_fwd_s\": {:.6e}, \"spawn_tps\": {:.2}}}",
                    p.n,
                    p.pool_s,
                    1.0 / p.pool_s,
                    p.spawn_s,
                    1.0 / p.spawn_s,
                )
            })
            .collect();
        json.push_str(&recs.join(",\n"));
        json.push_str("\n  ]");
    }
    json.push_str("\n}\n");

    println!("shape check: bytes ratio tends to 1/2 (exactly (⌊n/2⌋+1)/n");
    println!("per packed line) and the r2c transform speedup approaches ~2x");
    println!("on large shapes; with >1 host cores the threaded rows scale");
    println!("transforms/sec with the worker count.");
    // the same half-spectrum bound, stated for one memoized volume
    let m = Vec3::cube(64);
    let half = Spectrum::half_shape(m);
    println!(
        "\nexample: a memoized 64³ spectrum stores {} of {} bins ({} of {} bytes).",
        half.len(),
        m.len(),
        Spectrum::zeros(m).stored_bytes(),
        Spectrum::zeros(m).full_bytes(),
    );

    match std::fs::write("BENCH_fft.json", &json) {
        Ok(()) => println!("\nwrote BENCH_fft.json"),
        Err(e) => {
            // fail loudly: CI greps the file for the spawn-compare
            // fields, and a swallowed write error would let that
            // check pass vacuously against a stale committed copy
            eprintln!("\ncould not write BENCH_fft.json: {e}");
            std::process::exit(1);
        }
    }
}
