//! §IX-B — working-memory accounting: pooled-allocator footprint over
//! training rounds (flat after warm-up, per §VII-C) — both the bare
//! pool mechanics and the *integrated* engine, whose every hot-path
//! buffer now leases from a `PoolSet` — and the memory cost of FFT
//! memoization vs the speed it buys.

use znn_alloc::{ImagePool, PoolSet};
use znn_bench::{fmt, header, row, time_per_round};
use znn_core::{ConvPolicy, TrainConfig, Znn};
use znn_graph::builder::comparison_net;
use znn_tensor::{ops, Vec3};

fn main() {
    println!("# §VII-C — pooled allocator footprint across training-like rounds\n");
    let pool = ImagePool::new();
    header(&["round", "bytes from system", "hits", "misses"]);
    for round in 0..6 {
        let imgs: Vec<_> = (1..8).map(|s| pool.get(Vec3::cube(4 * s))).collect();
        for img in imgs {
            pool.put(img);
        }
        row(&[
            round.to_string(),
            pool.stats().bytes_from_system().to_string(),
            pool.stats().hits().to_string(),
            pool.stats().misses().to_string(),
        ]);
    }
    println!("\nshape check: footprint peaks after round 0 and stays flat.\n");

    println!("# §VII-C — the same property on the real engine (every hot-path");
    println!("# buffer leased from a PoolSet through TrainConfig::pools)\n");
    {
        let pools = PoolSet::new();
        let (g, _) = comparison_net(2, Vec3::cube(3), Vec3::cube(2), true);
        let cfg = TrainConfig {
            workers: 2,
            conv: ConvPolicy::ForceFft,
            memoize_fft: true,
            pools: Some(std::sync::Arc::clone(&pools)),
            ..Default::default()
        };
        let out_shape = Vec3::cube(2);
        let znn = Znn::new(g, out_shape, cfg).unwrap();
        let x = ops::random(znn.input_shape(), 1);
        let t = ops::random(out_shape, 2).map(|v| 0.5 + 0.4 * v);
        header(&[
            "round",
            "resident bytes",
            "churn bytes (cum.)",
            "hits",
            "misses",
            "hit rate",
        ]);
        for round in 0..6 {
            znn.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t));
            let s = znn.stats();
            row(&[
                round.to_string(),
                s.alloc_resident_bytes.to_string(),
                s.alloc_leased_bytes.to_string(),
                s.alloc_hits.to_string(),
                s.alloc_misses.to_string(),
                format!("{:.3}", s.alloc_hit_rate()),
            ]);
        }
        println!("\nshape check: resident bytes plateau after round ~3 while churn");
        println!("keeps growing — steady-state training never touches malloc.\n");
    }

    println!("# §IX-B — FFT memoization: memory vs speed\n");
    let out_shape = Vec3::cube(2);
    let kernel = Vec3::cube(5);
    header(&[
        "memoize",
        "s/update",
        "memoized spectra (count)",
        "half-spectrum bytes",
        "c2c bytes (avoided)",
    ]);
    for memoize in [false, true] {
        let (g, _) = comparison_net(3, kernel, Vec3::cube(2), true);
        let cfg = TrainConfig {
            workers: 2,
            conv: ConvPolicy::ForceFft,
            memoize_fft: memoize,
            ..Default::default()
        };
        let znn = Znn::new(g, out_shape, cfg).unwrap();
        let x = ops::random(znn.input_shape(), 1);
        let t = ops::random(out_shape, 2).map(|v| 0.5 + 0.4 * v);
        let dt = time_per_round(1, 3, || {
            znn.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t));
        });
        row(&[
            memoize.to_string(),
            fmt(dt),
            znn.memoized_spectra().to_string(),
            znn.memoized_spectrum_bytes().to_string(),
            znn.memoized_spectrum_c2c_bytes().to_string(),
        ]);
    }
    println!("\nshape check: memoization trades retained spectra (memory");
    println!("proportional to network size) for fewer transforms per round.");
}
