//! Fig 9 — ZNN vs the layerwise baseline, 3D networks; kernels 3³, 5³,
//! 7³ and growing output patches, seconds per update.
//!
//! The paper's claim: in 3D the FFT-vs-direct crossover comes at much
//! smaller kernels than in 2D — ZNN is competitive at 5³ and wins at
//! 7³, the kernel sizes used in connectomics practice.

use znn_baseline::LayerwiseNet;
use znn_bench::{fmt, header, row, time_per_round};
use znn_core::{ConvPolicy, TrainConfig, Znn};
use znn_graph::builder::comparison_net;
use znn_ops::Loss;
use znn_tensor::{ops, Vec3};

fn main() {
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // budget-matching: the layerwise baseline's par_iter sweeps run
    // inside `pool.install`, so baseline and engine draw on the same
    // number of threads in one process (no global-pool oversubscription
    // while the ZNN engine's own workers exist)
    let baseline_pool = rayon::ThreadPoolBuilder::new()
        .num_threads(workers)
        .build()
        .expect("baseline pool");
    let width = 3usize;
    let kernels = [3usize, 5, 7];
    let outputs = [1usize, 2, 4];
    println!("# Fig 9 — 3D ConvNets, seconds/update (width {width}, sparse training)\n");
    for &k in &kernels {
        println!("## kernel {k}x{k}x{k}");
        header(&["output", "ZNN (FFT) s/update", "layerwise direct s/update", "ratio direct/fft"]);
        for &o in &outputs {
            let out_shape = Vec3::cube(o);
            let kernel = Vec3::cube(k);
            let pool = Vec3::cube(2);

            let (g_sparse, _) = comparison_net(width, kernel, pool, true);
            let cfg = TrainConfig {
                workers,
                conv: ConvPolicy::ForceFft,
                memoize_fft: true,
                ..Default::default()
            };
            let znn = Znn::new(g_sparse, out_shape, cfg).unwrap();
            let x = ops::random(znn.input_shape(), 1);
            let t = ops::random(out_shape, 2).map(|v| 0.5 + 0.4 * v);
            let t_znn = time_per_round(1, 3, || {
                znn.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t));
            });

            let (g_dense, _) = comparison_net(width, kernel, pool, false);
            let mut base = LayerwiseNet::new(g_dense, out_shape, 0x5EED).unwrap();
            let bx = ops::random(base.input_shape(), 3);
            let bt = ops::random(out_shape, 4).map(|v| 0.5 + 0.4 * v);
            let t_base = time_per_round(1, 3, || {
                baseline_pool.install(|| {
                    base.train_step(std::slice::from_ref(&bx), std::slice::from_ref(&bt), Loss::Mse, 0.01);
                });
            });

            row(&[
                format!("{o}^3"),
                fmt(t_znn),
                fmt(t_base),
                format!("{:.2}", t_base / t_znn),
            ]);
        }
        println!();
    }
    println!("shape check: the direct/fft ratio grows with kernel size and");
    println!("crosses 1 at smaller k than in the 2D sweep (Fig 8) — the");
    println!("paper's central CPU-vs-GPU observation.");
}
