//! Table I — FLOPs of pooling, filtering and transfer layers.
//!
//! Prints the analytic per-layer costs (the table itself) next to
//! *measured* wall-clock for the same operations, so the claimed
//! complexity ratios can be checked empirically: filtering costs
//! ~`6·log₂k`× pooling; transfer ≈ pooling.

use znn_bench::{fmt, header, row, time_per_round};
use znn_ops::filter::{max_filter, FilterImpl};
use znn_ops::pool::max_pool;
use znn_ops::Transfer;
use znn_tensor::{ops, Vec3};
use znn_theory::flops::{ConvAlgorithm, LayerModel};

fn main() {
    println!("# Table I — nonlinear layer costs (f nodes, n^3 images)\n");
    let f = 4usize;
    let n = 48usize;
    let k = 2usize;
    let img = ops::random(Vec3::cube(n), 1);

    header(&[
        "layer", "analytic fwd FLOPs", "analytic bwd FLOPs", "analytic upd FLOPs",
        "measured fwd s/layer",
    ]);

    let pool_model = LayerModel::MaxPool { n: n as f64, f: f as f64 };
    let pc = pool_model.flops_default(ConvAlgorithm::Direct);
    let t_pool = time_per_round(2, 5, || {
        for _ in 0..f {
            std::hint::black_box(max_pool(&img, Vec3::cube(k)));
        }
    });
    row(&[
        "max-pooling p=2".into(),
        format!("f·n³ = {}", fmt(pc.forward)),
        fmt(pc.backward),
        fmt(pc.update),
        fmt(t_pool),
    ]);

    let filt_model = LayerModel::MaxFilter { n: n as f64, f: f as f64, k: k as f64 };
    let fc = filt_model.flops_default(ConvAlgorithm::Direct);
    let t_filt = time_per_round(2, 5, || {
        for _ in 0..f {
            std::hint::black_box(max_filter(&img, Vec3::cube(k), Vec3::one(), FilterImpl::Deque));
        }
    });
    row(&[
        "max-filtering k=2".into(),
        format!("f·6n³·log k = {}", fmt(fc.forward)),
        fmt(fc.backward),
        fmt(fc.update),
        fmt(t_filt),
    ]);

    let tr_model = LayerModel::Transfer { n: n as f64, f: f as f64 };
    let tc = tr_model.flops_default(ConvAlgorithm::Direct);
    let t_tr = time_per_round(2, 5, || {
        for _ in 0..f {
            std::hint::black_box(Transfer::Relu.forward(&img, 0.1));
        }
    });
    row(&[
        "transfer (ReLU)".into(),
        format!("f·n³ = {}", fmt(tc.forward)),
        fmt(tc.backward),
        fmt(tc.update),
        fmt(t_tr),
    ]);

    println!(
        "\nshape check: transfer/pool measured ratio {:.2} (analytic 1.00), \
         filter/pool measured ratio {:.2}",
        t_tr / t_pool,
        t_filt / t_pool,
    );
}
