//! Tables III–IV — per-layer T∞ (latency with unbounded processors).

use znn_bench::{fmt, header, row};
use znn_theory::flops::{ConvAlgorithm, LayerModel};
use znn_theory::tinf::t_inf;
use znn_theory::DEFAULT_C;

fn main() {
    println!("# Table III — conv layer T∞ (n=24, k=5)\n");
    header(&["width f", "direct fwd", "direct bwd", "direct upd", "fft fwd", "fft upd", "memoized upd"]);
    for f in [1.0, 4.0, 16.0, 64.0] {
        let l = LayerModel::Conv {
            n: 24.0,
            k: 5.0,
            f_in: f,
            f_out: f,
        };
        let d = t_inf(&l, ConvAlgorithm::Direct, DEFAULT_C);
        let x = t_inf(&l, ConvAlgorithm::Fft, DEFAULT_C);
        let m = t_inf(&l, ConvAlgorithm::FftMemoized, DEFAULT_C);
        row(&[
            format!("{f}"),
            fmt(d.forward),
            fmt(d.backward),
            fmt(d.update),
            fmt(x.forward),
            fmt(x.update),
            fmt(m.update),
        ]);
    }

    println!("\n# Table IV — nonlinear layer T∞ (n=24)\n");
    header(&["layer", "fwd", "bwd", "upd"]);
    for (name, l) in [
        ("max-pooling", LayerModel::MaxPool { n: 24.0, f: 16.0 }),
        (
            "max-filtering k=2",
            LayerModel::MaxFilter {
                n: 24.0,
                f: 16.0,
                k: 2.0,
            },
        ),
        ("transfer", LayerModel::Transfer { n: 24.0, f: 16.0 }),
    ] {
        let t = t_inf(&l, ConvAlgorithm::Direct, DEFAULT_C);
        row(&[name.into(), fmt(t.forward), fmt(t.backward), fmt(t.update)]);
    }
    println!("\nshape check: T∞ grows only logarithmically with width f (the");
    println!("⌈log₂ f⌉ collapse term), while serial cost grows as f².");
}
