//! Shared plumbing for the benchmark harness binaries that regenerate
//! every table and figure of the paper (see DESIGN.md §3 for the
//! experiment index and EXPERIMENTS.md for recorded results).

#![warn(missing_docs)]

use std::time::Instant;

/// Times `f` over `reps` repetitions after `warmup` unrecorded runs;
/// returns seconds per repetition — the paper's measurement protocol
/// ("5 warm-up rounds and then averaging the time required for the next
/// 50 rounds"), scaled down for CI-sized runs.
pub fn time_per_round(warmup: usize, reps: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() / reps.max(1) as f64
}

/// Prints a markdown-style table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Prints a markdown-style header + separator.
pub fn header(cells: &[&str]) {
    println!("| {} |", cells.join(" | "));
    println!("|{}|", cells.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
}

/// Formats a float compactly.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 || v.abs() < 0.01 {
        format!("{v:.3e}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_is_positive() {
        let t = time_per_round(0, 3, || {
            std::hint::black_box((0..10_000).sum::<u64>());
        });
        assert!(t > 0.0);
    }

    #[test]
    fn fmt_picks_reasonable_forms() {
        assert_eq!(fmt(0.0), "0");
        assert!(fmt(123456.5).contains('e'));
        assert!(!fmt(3.25).contains('e'));
    }
}
