//! Differential pins for the `znn-simd`-routed op-layer kernels: the
//! direct convolver's fused z-row MAC and the transfer functions.
//!
//! `conv_valid_into` accumulates with `fma` (one rounding per tap), so
//! it is pinned against an `f64` reference within a per-tap rounding
//! budget rather than bitwise. The transfer functions preserve the
//! scalar branch structure exactly and are pinned bitwise against the
//! scalar [`Transfer::apply`]/[`Transfer::derivative_from_output`]
//! loops.

use proptest::prelude::*;
use znn_ops::{conv, Transfer};
use znn_tensor::{ops, Tensor3, Vec3};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Each output voxel sums `k.len()` fused multiply-adds of values
    /// in [−1, 1), so its distance from the exact (f64) sum is below
    /// `k.len() · ε · (running-magnitude bound)`; `2·k.len()·ε` is a
    /// comfortable ceiling for these operand ranges.
    #[test]
    fn conv_valid_error_vs_f64_reference_is_tap_bounded(
        nx in 2usize..6, ny in 2usize..6, nz in 3usize..9,
        kx in 1usize..3, ky in 1usize..3, kz in 1usize..4,
        seed in 0u64..1000,
    ) {
        let n = Vec3::new(nx.max(kx), ny.max(ky), nz.max(kz));
        let k = Vec3::new(kx, ky, kz);
        let img = ops::random(n, seed);
        let ker = ops::random(k, seed ^ 0x5EED);
        let got = conv::conv_valid(&img, &ker, Vec3::one());
        let out = conv::valid_shape(n, k, Vec3::one()).unwrap();
        let tol = 2.0 * k.len() as f64 * f64::from(f32::EPSILON) * k.len() as f64;
        for o in out.iter() {
            let mut exact = 0.0f64;
            for t in k.iter() {
                let at = Vec3::new(
                    o[0] + k[0] - 1 - t[0],
                    o[1] + k[1] - 1 - t[1],
                    o[2] + k[2] - 1 - t[2],
                );
                exact += f64::from(img.at(at)) * f64::from(ker.at(t));
            }
            prop_assert!(
                (f64::from(got.at(o)) - exact).abs() <= tol,
                "voxel {o}: got {} want {exact}", got.at(o)
            );
        }
    }

    /// Transfer forward/backward must equal the scalar per-voxel forms
    /// bitwise — the vector bodies replicate the branch structure (and
    /// `Linear` backward multiplies by exactly 1).
    #[test]
    fn transfer_kernels_match_scalar_forms_bitwise(
        x in 1usize..4, y in 1usize..4, z in 1usize..11,
        seed in 0u64..1000, bias_seed in 0u64..1000,
    ) {
        let bias = ops::splitmix_f32(bias_seed, 0);
        let shape = Vec3::new(x, y, z);
        let img = ops::random(shape, seed);
        for f in [
            Transfer::Linear,
            Transfer::Logistic,
            Transfer::Tanh,
            Transfer::Relu,
            Transfer::LeakyRelu(0.1),
        ] {
            let fwd = f.forward(&img, bias);
            for (i, &v) in img.as_slice().iter().enumerate() {
                prop_assert_eq!(
                    fwd.as_slice()[i].to_bits(),
                    f.apply(v + bias).to_bits(),
                    "{:?} forward voxel {}", f, i
                );
            }
            let grad = ops::random(shape, seed ^ 0xBAC);
            let back = f.backward(&grad, &fwd);
            for (i, (&g, &yv)) in grad.as_slice().iter().zip(fwd.as_slice()).enumerate() {
                prop_assert_eq!(
                    back.as_slice()[i].to_bits(),
                    (g * f.derivative_from_output(yv)).to_bits(),
                    "{:?} backward voxel {}", f, i
                );
            }
        }
    }
}

/// The delta-kernel identity must stay *exact* through the fused path:
/// `fma(1, v, 0) = v` bitwise.
#[test]
fn fused_conv_keeps_delta_identity_exact() {
    let img = ops::random(Vec3::cube(6), 99);
    let delta = Tensor3::filled(Vec3::one(), 1.0f32);
    let out = conv::conv_valid(&img, &delta, Vec3::one());
    assert!(out
        .as_slice()
        .iter()
        .zip(img.as_slice())
        .all(|(a, b)| a.to_bits() == b.to_bits()));
}
