//! Property tests pinning the core numerical invariants of the ops
//! crate: FFT and direct convolution agree on every geometry; sparse
//! convolution equals dense convolution with a dilated kernel; the two
//! max-filter algorithms agree voxel-for-voxel; pooling is filtering
//! sampled on the block lattice.

use proptest::prelude::*;
use std::sync::Arc;
use znn_fft::FftEngine;
use znn_ops::filter::{max_filter, FilterImpl};
use znn_ops::{conv, ConvMethod, Convolver};
use znn_tensor::{ops, pad, Vec3};

fn geometry() -> impl Strategy<Value = (Vec3, Vec3, Vec3)> {
    // (image n, kernel k, sparsity s) with the dilated kernel fitting
    (
        (1usize..3, 1usize..3, 1usize..3),
        (1usize..4, 1usize..4, 1usize..4),
        (1usize..3, 1usize..3, 1usize..3),
    )
        .prop_map(|(extra, k, s)| {
            let k = Vec3::from(k);
            let s = Vec3::from(s);
            let n = k.dilated(s) + Vec3::from(extra) - Vec3::one() + Vec3::new(2, 1, 3);
            (n, k, s)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fft_and_direct_agree_everywhere((n, k, s) in geometry(), seed in any::<u64>()) {
        let engine = Arc::new(FftEngine::new());
        let direct = Convolver::new(ConvMethod::Direct, Arc::clone(&engine));
        let fft = Convolver::new(ConvMethod::Fft, engine);
        let img = ops::random(n, seed);
        let ker = ops::random(k, seed ^ 0xABCD);
        let a = direct.conv_valid(&img, &ker, s);
        let b = fft.conv_valid(&img, &ker, s);
        prop_assert!(a.max_abs_diff(&b) < 2e-3, "fwd diff {}", a.max_abs_diff(&b));

        let g = ops::random(a.shape(), seed ^ 0x1234);
        let da = direct.input_gradient(&g, &ker, s);
        let db = fft.input_gradient(&g, &ker, s);
        prop_assert!(da.max_abs_diff(&db) < 2e-3, "bwd diff {}", da.max_abs_diff(&db));

        let wa = direct.kernel_gradient(&img, &g, k, s);
        let wb = fft.kernel_gradient(&img, &g, k, s);
        prop_assert!(wa.max_abs_diff(&wb) < 2e-3, "upd diff {}", wa.max_abs_diff(&wb));
    }

    #[test]
    fn sparse_equals_dense_with_dilated_kernel((n, k, s) in geometry(), seed in any::<u64>()) {
        let img = ops::random(n, seed);
        let ker = ops::random(k, seed ^ 0x77);
        let sparse = conv::conv_valid(&img, &ker, s);
        let dense = conv::conv_valid(&img, &pad::dilate(&ker, s), Vec3::one());
        prop_assert!(sparse.max_abs_diff(&dense) < 1e-5);
    }

    #[test]
    fn filter_impls_agree((n, k, s) in geometry(), seed in any::<u64>()) {
        let img = ops::random(n, seed);
        let a = max_filter(&img, k, s, FilterImpl::Deque);
        let b = max_filter(&img, k, s, FilterImpl::Heap);
        prop_assert_eq!(a.output, b.output);
        prop_assert_eq!(a.argmax, b.argmax);
    }

    #[test]
    fn conv_is_linear_in_the_image((n, k, s) in geometry(), seed in any::<u64>()) {
        let a = ops::random(n, seed);
        let b = ops::random(n, seed ^ 0x99);
        let ker = ops::random(k, seed ^ 0x55);
        let mut sum = a.clone();
        ops::add_assign(&mut sum, &b);
        let lhs = conv::conv_valid(&sum, &ker, s);
        let mut rhs = conv::conv_valid(&a, &ker, s);
        ops::add_assign(&mut rhs, &conv::conv_valid(&b, &ker, s));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-4);
    }

    #[test]
    fn pool_is_filter_on_lattice(
        half in (1usize..4, 1usize..4, 1usize..4),
        p in (1usize..3, 1usize..3, 1usize..3),
        seed in any::<u64>(),
    ) {
        let p = Vec3::from(p);
        let n = Vec3::from(half) * p; // divisible by construction
        let img = ops::random(n, seed);
        let pooled = znn_ops::pool::max_pool(&img, p);
        let filtered = max_filter(&img, p, Vec3::one(), FilterImpl::Deque);
        let sampled = pad::gather_strided(
            &filtered.output, Vec3::zero(), p, pooled.output.shape());
        prop_assert_eq!(sampled, pooled.output);
    }
}
