//! Direct (spatial-domain) convolution and its gradients.
//!
//! Conventions (matching the paper and MATLAB):
//!
//! * **valid** true convolution of an `n` image with a `k` kernel yields
//!   `n − s·(k−1)` voxels at sparsity `s` (the kernel is reflected),
//! * **full** true convolution yields `n + s·(k−1)` voxels,
//! * the **kernel gradient** of a valid convolution is itself a valid
//!   convolution of the reflected input with the output gradient
//!   (§III-B), restricted to the kernel lattice when sparse.
//!
//! The inner loops run along the contiguous `z` axis and dispatch
//! through [`znn_simd::fma_acc_f`]: a fused multiply-accumulate (one
//! rounding per element) with an AVX2+FMA body on detecting hosts and a
//! bitwise-identical `f32::mul_add` scalar twin elsewhere.

use znn_tensor::{pad, Image, Tensor3, Vec3};

/// Checks an image/kernel/sparsity combination and returns the valid
/// output shape `n − s·(k−1)`.
pub fn valid_shape(n: Vec3, k: Vec3, s: Vec3) -> Option<Vec3> {
    n.valid_conv(k.dilated(s))
}

/// Valid true convolution with per-axis sparsity (skip kernels, §II).
///
/// `sparsity = (1,1,1)` is dense convolution. Panics when the dilated
/// kernel does not fit in the image.
pub fn conv_valid(img: &Image, ker: &Image, sparsity: Vec3) -> Image {
    let n = img.shape();
    let k = ker.shape();
    let out_shape = valid_shape(n, k, sparsity)
        .unwrap_or_else(|| panic!("kernel {k} at sparsity {sparsity} larger than image {n}"));
    let mut out = Tensor3::<f32>::zeros(out_shape);
    conv_valid_into(img, ker, sparsity, &mut out);
    out
}

/// [`conv_valid`] into a caller-provided **zero-filled** output of the
/// valid shape — the allocation-free form used with pool-leased
/// buffers (leases are zeroed). Panics on a wrong output shape.
pub fn conv_valid_into(img: &Image, ker: &Image, sparsity: Vec3, out: &mut Image) {
    let n = img.shape();
    let k = ker.shape();
    let s = sparsity;
    let out_shape = valid_shape(n, k, s)
        .unwrap_or_else(|| panic!("kernel {k} at sparsity {s} larger than image {n}"));
    assert_eq!(out.shape(), out_shape, "conv_valid_into output shape");
    let in_data = img.as_slice();
    let (iy_stride, ix_stride) = (n[2], n[1] * n[2]);

    // out[o] = Σ_t ker[t] · img[o + (k−1−t)·s]  (true convolution).
    // Substituting u = k−1−t: weight is the reflected kernel at u and the
    // input offset is o + u·s, so each (u, weight) pair contributes an
    // axpy over a contiguous z-run of the input.
    for ox in 0..out_shape[0] {
        for oy in 0..out_shape[1] {
            let row_start = out_shape.offset(Vec3::new(ox, oy, 0));
            for ux in 0..k[0] {
                for uy in 0..k[1] {
                    let in_base =
                        (ox + ux * s[0]) * ix_stride + (oy + uy * s[1]) * iy_stride;
                    for uz in 0..k[2] {
                        let w = ker.at(Vec3::new(k[0] - 1 - ux, k[1] - 1 - uy, k[2] - 1 - uz));
                        if w == 0.0 {
                            continue;
                        }
                        // As the output z index advances by one, the input
                        // index advances by one as well (sparsity dilates
                        // the kernel, not the output walk), so this is a
                        // contiguous fused multiply-accumulate row.
                        let src = &in_data[in_base + uz * s[2]..][..out_shape[2]];
                        let dst = &mut out.as_mut_slice()[row_start..row_start + out_shape[2]];
                        znn_simd::fma_acc_f(dst, w, src);
                    }
                }
            }
        }
    }
}

/// Full true convolution with per-axis sparsity: output `n + s·(k−1)`.
///
/// Implemented as a valid convolution of the zero-padded input, which
/// keeps a single set of boundary semantics.
pub fn conv_full(img: &Image, ker: &Image, sparsity: Vec3) -> Image {
    let n = img.shape();
    let k = ker.shape();
    let margin = (k - Vec3::one()) * sparsity;
    let padded = pad::pad(img, n + margin * 2, margin);
    conv_valid(&padded, ker, sparsity)
}

/// Valid cross-correlation (no reflection) with sparsity — provided for
/// callers that think in correlation terms; equals a valid convolution
/// with the reflected kernel.
pub fn xcorr_valid(img: &Image, ker: &Image, sparsity: Vec3) -> Image {
    conv_valid(img, &pad::flip(ker), sparsity)
}

/// Kernel gradient of a sparse valid convolution (§III-B).
///
/// For forward `y = conv_valid(x, w, s)` and loss gradient `g = ∂L/∂y`,
/// returns `∂L/∂w`, a tensor shaped like `w`:
///
/// `∂L/∂w[t] = Σ_o g[o] · x[o + (k−1−t)·s]`
///
/// which is the paper's "reflected forward image convolved with the
/// backward image", sampled on the sparse kernel lattice.
pub fn kernel_gradient(x: &Image, g: &Image, k: Vec3, sparsity: Vec3) -> Image {
    let n = x.shape();
    let s = sparsity;
    let expect = valid_shape(n, k, s).expect("kernel/sparsity does not fit input");
    assert_eq!(
        g.shape(),
        expect,
        "output gradient shape {} does not match valid shape {expect}",
        g.shape()
    );
    let g_data = g.as_slice();
    let x_data = x.as_slice();
    let (xy_stride, xx_stride) = (n[2], n[1] * n[2]);
    let go = g.shape();

    Tensor3::from_fn(k, |t| {
        let u = Vec3::new(k[0] - 1 - t[0], k[1] - 1 - t[1], k[2] - 1 - t[2]);
        let mut acc = 0.0f64;
        for ox in 0..go[0] {
            for oy in 0..go[1] {
                let g_base = go.offset(Vec3::new(ox, oy, 0));
                let x_base = (ox + u[0] * s[0]) * xx_stride + (oy + u[1] * s[1]) * xy_stride
                    + u[2] * s[2];
                let g_row = &g_data[g_base..g_base + go[2]];
                // Contiguous dot: both walks advance by one voxel in z.
                let x_row = &x_data[x_base..x_base + go[2]];
                acc += g_row
                    .iter()
                    .zip(x_row)
                    .map(|(&a, &b)| a as f64 * b as f64)
                    .sum::<f64>();
            }
        }
        acc as f32
    })
}

/// Input gradient of a sparse valid convolution: the backward-pass
/// operation of §III-A — a *full* convolution of the output gradient
/// with the **reflected** kernel at the same sparsity.
pub fn input_gradient(g: &Image, ker: &Image, sparsity: Vec3) -> Image {
    conv_full(g, &pad::flip(ker), sparsity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use znn_tensor::ops::random;

    /// Reference implementation: direct translation of the definition.
    fn conv_valid_reference(img: &Image, ker: &Image, s: Vec3) -> Image {
        let n = img.shape();
        let k = ker.shape();
        let out = valid_shape(n, k, s).unwrap();
        Tensor3::from_fn(out, |o| {
            let mut acc = 0.0f64;
            for t in k.iter() {
                let at = Vec3::new(
                    o[0] + (k[0] - 1 - t[0]) * s[0],
                    o[1] + (k[1] - 1 - t[1]) * s[1],
                    o[2] + (k[2] - 1 - t[2]) * s[2],
                );
                acc += img.at(at) as f64 * ker.at(t) as f64;
            }
            acc as f32
        })
    }

    #[test]
    fn dense_valid_matches_reference() {
        for (n, k) in [
            (Vec3::cube(6), Vec3::cube(3)),
            (Vec3::new(7, 5, 4), Vec3::new(3, 2, 1)),
            (Vec3::flat(8, 8), Vec3::flat(3, 3)),
            (Vec3::cube(4), Vec3::cube(4)),
        ] {
            let img = random(n, 1);
            let ker = random(k, 2);
            let got = conv_valid(&img, &ker, Vec3::one());
            let want = conv_valid_reference(&img, &ker, Vec3::one());
            assert!(got.max_abs_diff(&want) < 1e-5, "n={n} k={k}");
        }
    }

    #[test]
    fn sparse_valid_matches_reference() {
        for s in [Vec3::cube(2), Vec3::new(1, 2, 3), Vec3::cube(3)] {
            let n = Vec3::cube(10);
            let k = Vec3::cube(3);
            let img = random(n, 3);
            let ker = random(k, 4);
            let got = conv_valid(&img, &ker, s);
            let want = conv_valid_reference(&img, &ker, s);
            assert_eq!(got.shape(), n - (k - Vec3::one()) * s);
            assert!(got.max_abs_diff(&want) < 1e-5, "s={s}");
        }
    }

    #[test]
    fn sparse_conv_equals_dense_conv_with_dilated_kernel() {
        let n = Vec3::cube(9);
        let k = Vec3::cube(3);
        let s = Vec3::cube(2);
        let img = random(n, 5);
        let ker = random(k, 6);
        let sparse = conv_valid(&img, &ker, s);
        let dense = conv_valid(&img, &pad::dilate(&ker, s), Vec3::one());
        assert!(sparse.max_abs_diff(&dense) < 1e-5);
    }

    #[test]
    fn full_conv_round_trips_shape_and_matches_padding_identity() {
        let img = random(Vec3::cube(4), 7);
        let ker = random(Vec3::cube(3), 8);
        let full = conv_full(&img, &ker, Vec3::one());
        assert_eq!(full.shape(), Vec3::cube(6));
        // interior of full conv equals valid conv of padded image: already
        // by construction; check mass identity instead
        assert!((full.sum() - img.sum() * ker.sum()).abs() < 1e-3);
    }

    #[test]
    fn delta_kernel_identity() {
        let img = random(Vec3::cube(5), 9);
        let delta = Tensor3::filled(Vec3::one(), 1.0f32);
        assert!(conv_valid(&img, &delta, Vec3::one()).max_abs_diff(&img) == 0.0);
        assert!(conv_full(&img, &delta, Vec3::one()).max_abs_diff(&img) == 0.0);
    }

    #[test]
    fn shifted_delta_translates() {
        // kernel with a 1 at position t shifts the image by (k-1)-t under
        // true convolution
        let n = Vec3::cube(5);
        let img = random(n, 10);
        let mut ker = Tensor3::<f32>::zeros(Vec3::cube(3));
        ker.set((2, 2, 2), 1.0); // t = k-1 => no shift in valid output
        let out = conv_valid(&img, &ker, Vec3::one());
        let want = pad::crop(&img, Vec3::zero(), Vec3::cube(3));
        assert!(out.max_abs_diff(&want) == 0.0);
    }

    /// Finite-difference check of the kernel gradient.
    #[test]
    fn kernel_gradient_matches_finite_differences() {
        let n = Vec3::new(5, 4, 6);
        let k = Vec3::new(2, 2, 3);
        let x = random(n, 11);
        let w = random(k, 12);
        let g = random(valid_shape(n, k, Vec3::one()).unwrap(), 13);
        // L = <conv(x, w), g>; dL/dw via our gradient
        let grad = kernel_gradient(&x, &g, k, Vec3::one());
        let eps = 1e-2f32;
        for t in k.iter() {
            let mut wp = w.clone();
            wp[t] += eps;
            let mut wm = w.clone();
            wm[t] -= eps;
            let lp = znn_tensor::ops::dot(&conv_valid(&x, &wp, Vec3::one()), &g);
            let lm = znn_tensor::ops::dot(&conv_valid(&x, &wm, Vec3::one()), &g);
            let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!(
                (grad[t] - fd).abs() < 2e-2 * (1.0 + fd.abs()),
                "at {t}: analytic {} vs fd {fd}",
                grad[t]
            );
        }
    }

    #[test]
    fn sparse_kernel_gradient_matches_finite_differences() {
        let n = Vec3::cube(8);
        let k = Vec3::cube(2);
        let s = Vec3::cube(2);
        let x = random(n, 14);
        let w = random(k, 15);
        let g = random(valid_shape(n, k, s).unwrap(), 16);
        let grad = kernel_gradient(&x, &g, k, s);
        let eps = 1e-2f32;
        for t in k.iter() {
            let mut wp = w.clone();
            wp[t] += eps;
            let mut wm = w.clone();
            wm[t] -= eps;
            let lp = znn_tensor::ops::dot(&conv_valid(&x, &wp, s), &g);
            let lm = znn_tensor::ops::dot(&conv_valid(&x, &wm, s), &g);
            let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!(
                (grad[t] - fd).abs() < 2e-2 * (1.0 + fd.abs()),
                "at {t}: analytic {} vs fd {fd}",
                grad[t]
            );
        }
    }

    /// Finite-difference check of the input gradient (backward conv).
    #[test]
    fn input_gradient_matches_finite_differences() {
        let n = Vec3::new(4, 5, 3);
        let k = Vec3::new(2, 3, 2);
        let x = random(n, 17);
        let w = random(k, 18);
        let g = random(valid_shape(n, k, Vec3::one()).unwrap(), 19);
        let grad = input_gradient(&g, &w, Vec3::one());
        assert_eq!(grad.shape(), n);
        let eps = 1e-2f32;
        for at in [Vec3::zero(), Vec3::new(1, 2, 1), Vec3::new(3, 4, 2)] {
            let mut xp = x.clone();
            xp[at] += eps;
            let mut xm = x.clone();
            xm[at] -= eps;
            let lp = znn_tensor::ops::dot(&conv_valid(&xp, &w, Vec3::one()), &g);
            let lm = znn_tensor::ops::dot(&conv_valid(&xm, &w, Vec3::one()), &g);
            let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!(
                (grad[at] - fd).abs() < 2e-2 * (1.0 + fd.abs()),
                "at {at}: analytic {} vs fd {fd}",
                grad[at]
            );
        }
    }

    #[test]
    fn sparse_input_gradient_matches_finite_differences() {
        let n = Vec3::cube(7);
        let k = Vec3::cube(2);
        let s = Vec3::cube(3);
        let x = random(n, 20);
        let w = random(k, 21);
        let g = random(valid_shape(n, k, s).unwrap(), 22);
        let grad = input_gradient(&g, &w, s);
        assert_eq!(grad.shape(), n);
        let eps = 1e-2f32;
        for at in [Vec3::zero(), Vec3::cube(3), Vec3::cube(6)] {
            let mut xp = x.clone();
            xp[at] += eps;
            let mut xm = x.clone();
            xm[at] -= eps;
            let lp = znn_tensor::ops::dot(&conv_valid(&xp, &w, s), &g);
            let lm = znn_tensor::ops::dot(&conv_valid(&xm, &w, s), &g);
            let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!(
                (grad[at] - fd).abs() < 2e-2 * (1.0 + fd.abs()),
                "at {at}: analytic {} vs fd {fd}",
                grad[at]
            );
        }
    }
}
