//! The image filtering operations of the ZNN computation graph and
//! their Jacobians (paper §II–III).
//!
//! Each edge of a ZNN computation graph applies one of four operations
//! to a 3D image; this crate implements all four, their backward
//! (Jacobian-transpose) forms, and the parameter-gradient computations:
//!
//! | forward (§II) | backward (§III-A) | update (§III-B) |
//! |---|---|---|
//! | [`conv`] — valid, optionally sparse (skip-kernel) convolution | full convolution with the reflected kernel | [`conv::kernel_gradient`] |
//! | [`pool`] — max-pooling over `p³` blocks | scatter to block argmax | — |
//! | [`filter`] — sliding-window max-filtering | scatter-accumulate to window argmax | — |
//! | [`transfer`] — bias + pointwise nonlinearity | multiply by the derivative | bias gradient = sum of backward image |
//!
//! Convolution comes in two interchangeable implementations — direct
//! loops here and FFT-based in [`znn_fft`] — selected per layer by the
//! autotuner in `znn-core` (§IV). Max-filtering likewise has two
//! implementations: a monotonic-deque O(n) variant (default) and the
//! paper's heap-based O(n log k) variant, kept for the ablation bench.
//!
//! Loss functions ([`loss`]) close the training loop (§III, step 3).

#![warn(missing_docs)]

pub mod conv;
pub mod convolver;
pub mod filter;
pub mod loss;
pub mod pool;
pub mod transfer;

pub use convolver::{ConvMethod, Convolver};
pub use loss::Loss;
pub use transfer::Transfer;
