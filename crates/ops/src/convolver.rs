//! A method-agnostic convolution front end.
//!
//! The training engine picks direct or FFT convolution **per layer** by
//! autotuning (§IV); everything downstream only sees this trait-object-
//! free façade. The FFT path here is the *unshared* one-shot form — the
//! engine uses the staged `znn-fft` API directly when it can share and
//! memoize transforms; the [`Convolver`] is what the autotuner times and
//! what baseline/bench code calls.

use crate::conv;
use std::sync::Arc;
use std::time::Instant;
use znn_fft::FftEngine;
use znn_tensor::{Image, Vec3};

/// Convolution algorithm selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ConvMethod {
    /// Direct spatial loops (O(n′³·k³)).
    #[default]
    Direct,
    /// FFT-based (O(n³ log n)), one-shot (no transform sharing).
    Fft,
}

/// A convolution executor bound to a method and an FFT engine.
///
/// The convolver inherits its engine's §VII-C buffer pools: when the
/// engine was built with `FftEngine::with_buffer_pools`, the FFT path
/// pools through the engine itself and the direct path leases its
/// output buffers from the same `PoolSet` — one memory budget for both
/// methods (exactly as the autotuner times them inside the training
/// engine).
#[derive(Clone)]
pub struct Convolver {
    method: ConvMethod,
    engine: Arc<FftEngine>,
}

impl Convolver {
    /// Builds a convolver; the engine is shared so FFT plans are reused
    /// (and, when the engine is pooled, so is the buffer footprint).
    pub fn new(method: ConvMethod, engine: Arc<FftEngine>) -> Self {
        Convolver { method, engine }
    }

    /// A zero-filled output buffer, leased when the engine pools.
    fn lease(&self, shape: Vec3) -> Image {
        znn_alloc::lease_image(self.engine.buffer_pools(), shape)
    }

    /// Shorthand for a direct convolver (no FFT engine needed, but one is
    /// kept so the method can be switched cheaply).
    pub fn direct() -> Self {
        Convolver::new(ConvMethod::Direct, Arc::new(FftEngine::new()))
    }

    /// The method this convolver uses.
    pub fn method(&self) -> ConvMethod {
        self.method
    }

    /// The shared FFT engine.
    pub fn engine(&self) -> &Arc<FftEngine> {
        &self.engine
    }

    /// Valid sparse true convolution (forward pass).
    pub fn conv_valid(&self, img: &Image, ker: &Image, sparsity: Vec3) -> Image {
        match self.method {
            ConvMethod::Direct => {
                let out_shape = conv::valid_shape(img.shape(), ker.shape(), sparsity)
                    .expect("geometry must be valid");
                let mut out = self.lease(out_shape);
                conv::conv_valid_into(img, ker, sparsity, &mut out);
                out
            }
            ConvMethod::Fft => {
                if sparsity == Vec3::one() {
                    znn_fft::fft_conv_valid(&self.engine, img, ker)
                } else {
                    let dilated = znn_tensor::pad::dilate(ker, sparsity);
                    znn_fft::fft_conv_valid(&self.engine, img, &dilated)
                }
            }
        }
    }

    /// Full sparse convolution with the reflected kernel (backward pass).
    pub fn input_gradient(&self, grad: &Image, ker: &Image, sparsity: Vec3) -> Image {
        match self.method {
            ConvMethod::Direct => conv::input_gradient(grad, ker, sparsity),
            ConvMethod::Fft => {
                let flipped = znn_tensor::pad::flip(ker);
                if sparsity == Vec3::one() {
                    znn_fft::fft_conv_full(&self.engine, grad, &flipped)
                } else {
                    let dilated = znn_tensor::pad::dilate(&flipped, sparsity);
                    znn_fft::fft_conv_full(&self.engine, grad, &dilated)
                }
            }
        }
    }

    /// Kernel gradient (update pass).
    pub fn kernel_gradient(&self, x: &Image, g: &Image, k: Vec3, sparsity: Vec3) -> Image {
        match self.method {
            ConvMethod::Direct => conv::kernel_gradient(x, g, k, sparsity),
            ConvMethod::Fft => {
                // §III-B: the kernel gradient is the valid convolution of
                // the reflected forward image with the backward image; at
                // sparsity s it lands on the dilated-kernel lattice, so
                // sample every s-th voxel to recover the kernel's shape.
                let flipped = znn_tensor::pad::flip(x);
                let grad_dilated = znn_fft::fft_conv_valid(&self.engine, &flipped, g);
                debug_assert_eq!(grad_dilated.shape(), k.dilated(sparsity));
                if sparsity == Vec3::one() {
                    grad_dilated
                } else {
                    znn_tensor::pad::gather_strided(&grad_dilated, Vec3::zero(), sparsity, k)
                }
            }
        }
    }
}

/// Times one forward+backward+update round for each method on the given
/// geometry and returns the faster method — the per-layer autotuning
/// policy of §IV. `reps` rounds are averaged after one warm-up.
pub fn autotune(n: Vec3, k: Vec3, sparsity: Vec3, engine: &Arc<FftEngine>, reps: u32) -> ConvMethod {
    let img = znn_tensor::ops::random(n, 1);
    let ker = znn_tensor::ops::random(k, 2);
    let out_shape = conv::valid_shape(n, k, sparsity).expect("geometry must be valid");
    let g = znn_tensor::ops::random(out_shape, 3);
    let mut best = (ConvMethod::Direct, f64::INFINITY);
    for method in [ConvMethod::Direct, ConvMethod::Fft] {
        let c = Convolver::new(method, Arc::clone(engine));
        // warm-up: populates FFT plan caches so we time steady state
        let _ = c.conv_valid(&img, &ker, sparsity);
        let start = Instant::now();
        for _ in 0..reps {
            let y = c.conv_valid(&img, &ker, sparsity);
            let _ = c.input_gradient(&g, &ker, sparsity);
            let _ = c.kernel_gradient(&img, &g, k, sparsity);
            std::hint::black_box(y);
        }
        let dt = start.elapsed().as_secs_f64() / reps as f64;
        if dt < best.1 {
            best = (method, dt);
        }
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use znn_tensor::ops::random;

    fn both() -> (Convolver, Convolver) {
        let engine = Arc::new(FftEngine::new());
        (
            Convolver::new(ConvMethod::Direct, Arc::clone(&engine)),
            Convolver::new(ConvMethod::Fft, engine),
        )
    }

    #[test]
    fn methods_agree_on_dense_forward() {
        let (d, f) = both();
        for (n, k) in [
            (Vec3::cube(8), Vec3::cube(3)),
            (Vec3::flat(12, 12), Vec3::flat(5, 5)),
            (Vec3::new(6, 7, 8), Vec3::new(2, 3, 4)),
        ] {
            let img = random(n, 71);
            let ker = random(k, 72);
            let a = d.conv_valid(&img, &ker, Vec3::one());
            let b = f.conv_valid(&img, &ker, Vec3::one());
            assert!(a.max_abs_diff(&b) < 1e-3, "n={n} k={k}: {}", a.max_abs_diff(&b));
        }
    }

    #[test]
    fn methods_agree_on_sparse_forward() {
        let (d, f) = both();
        let img = random(Vec3::cube(12), 73);
        let ker = random(Vec3::cube(3), 74);
        let s = Vec3::cube(2);
        let a = d.conv_valid(&img, &ker, s);
        let b = f.conv_valid(&img, &ker, s);
        assert!(a.max_abs_diff(&b) < 1e-3);
    }

    #[test]
    fn methods_agree_on_input_gradient() {
        let (d, f) = both();
        let n = Vec3::cube(8);
        let k = Vec3::cube(3);
        let g = random(conv::valid_shape(n, k, Vec3::one()).unwrap(), 75);
        let ker = random(k, 76);
        let a = d.input_gradient(&g, &ker, Vec3::one());
        let b = f.input_gradient(&g, &ker, Vec3::one());
        assert_eq!(a.shape(), n);
        assert!(a.max_abs_diff(&b) < 1e-3);
    }

    #[test]
    fn methods_agree_on_kernel_gradient_dense_and_sparse() {
        let (d, f) = both();
        for s in [Vec3::one(), Vec3::cube(2)] {
            let n = Vec3::cube(9);
            let k = Vec3::cube(3);
            let img = random(n, 77);
            let g = random(conv::valid_shape(n, k, s).unwrap(), 78);
            let a = d.kernel_gradient(&img, &g, k, s);
            let b = f.kernel_gradient(&img, &g, k, s);
            assert_eq!(a.shape(), k);
            assert!(a.max_abs_diff(&b) < 1e-3, "s={s}: {}", a.max_abs_diff(&b));
        }
    }

    #[test]
    fn autotune_returns_some_method_quickly() {
        let engine = Arc::new(FftEngine::new());
        let m = autotune(Vec3::cube(8), Vec3::cube(3), Vec3::one(), &engine, 1);
        assert!(matches!(m, ConvMethod::Direct | ConvMethod::Fft));
    }
}
