//! Loss functions (paper §III, step 3).
//!
//! The paper implements "several possibilities for the loss function,
//! such as the Euclidean distance between the actual and desired
//! outputs". We provide the squared Euclidean loss, binary
//! cross-entropy for logistic outputs, and a hinge-style margin loss,
//! each with its gradient with respect to the network output.

use znn_tensor::Image;

/// A loss over one output image (multi-output networks sum per-node
/// losses).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Loss {
    /// `½ Σ (y − t)²` — the paper's Euclidean distance.
    #[default]
    Mse,
    /// `−Σ [t·ln y + (1−t)·ln(1−y)]` for `y ∈ (0,1)` (logistic outputs).
    BinaryCrossEntropy,
    /// Margin loss `Σ max(0, 1 − y·t̃)²` with `t̃ = 2t − 1 ∈ {−1, +1}` —
    /// the "square-square" style loss used in boundary detection work.
    SquaredHinge,
}

impl Loss {
    /// Loss value for output `y` against target `t`.
    pub fn value(&self, y: &Image, t: &Image) -> f64 {
        assert_eq!(y.shape(), t.shape(), "output/target shape mismatch");
        let mut acc = 0.0f64;
        for (&yv, &tv) in y.as_slice().iter().zip(t.as_slice()) {
            acc += self.scalar_value(yv, tv);
        }
        acc
    }

    /// Gradient of the loss with respect to the output image — the
    /// initialization of the backward graph's input nodes (§III-A).
    pub fn gradient(&self, y: &Image, t: &Image) -> Image {
        assert_eq!(y.shape(), t.shape(), "output/target shape mismatch");
        let mut out = y.clone();
        for (g, &tv) in out.as_mut_slice().iter_mut().zip(t.as_slice()) {
            *g = self.scalar_gradient(*g, tv);
        }
        out
    }

    #[inline]
    fn scalar_value(&self, y: f32, t: f32) -> f64 {
        match self {
            Loss::Mse => 0.5 * ((y - t) as f64).powi(2),
            Loss::BinaryCrossEntropy => {
                let y = (y as f64).clamp(1e-7, 1.0 - 1e-7);
                -(t as f64 * y.ln() + (1.0 - t as f64) * (1.0 - y).ln())
            }
            Loss::SquaredHinge => {
                let sign = 2.0 * t as f64 - 1.0;
                (1.0 - y as f64 * sign).max(0.0).powi(2)
            }
        }
    }

    #[inline]
    fn scalar_gradient(&self, y: f32, t: f32) -> f32 {
        match self {
            Loss::Mse => y - t,
            Loss::BinaryCrossEntropy => {
                let yc = y.clamp(1e-7, 1.0 - 1e-7);
                (yc - t) / (yc * (1.0 - yc))
            }
            Loss::SquaredHinge => {
                let sign = 2.0 * t - 1.0;
                let margin = 1.0 - y * sign;
                if margin > 0.0 {
                    -2.0 * sign * margin
                } else {
                    0.0
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use znn_tensor::ops::random;
    use znn_tensor::{Tensor3, Vec3};

    #[test]
    fn mse_of_identical_images_is_zero() {
        let y = random(Vec3::cube(3), 61);
        assert_eq!(Loss::Mse.value(&y, &y), 0.0);
        assert!(Loss::Mse
            .gradient(&y, &y)
            .as_slice()
            .iter()
            .all(|&v| v == 0.0));
    }

    #[test]
    fn losses_are_nonnegative() {
        let y = random(Vec3::cube(4), 62).map(|v| 0.5 + 0.4 * v); // in (0,1)
        let t = random(Vec3::cube(4), 63).map(|v| if v > 0.0 { 1.0 } else { 0.0 });
        for loss in [Loss::Mse, Loss::BinaryCrossEntropy, Loss::SquaredHinge] {
            assert!(loss.value(&y, &t) >= 0.0, "{loss:?}");
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let y = random(Vec3::cube(3), 64).map(|v| 0.5 + 0.35 * v);
        let t = random(Vec3::cube(3), 65).map(|v| if v > 0.0 { 1.0 } else { 0.0 });
        for loss in [Loss::Mse, Loss::BinaryCrossEntropy, Loss::SquaredHinge] {
            let g = loss.gradient(&y, &t);
            let eps = 1e-3f32;
            for at in [Vec3::zero(), Vec3::new(1, 2, 0), Vec3::cube(2)] {
                let mut yp = y.clone();
                yp[at] += eps;
                let mut ym = y.clone();
                ym[at] -= eps;
                let fd = ((loss.value(&yp, &t) - loss.value(&ym, &t)) / (2.0 * eps as f64)) as f32;
                assert!(
                    (g[at] - fd).abs() < 1e-2 * (1.0 + fd.abs()),
                    "{loss:?} at {at}: analytic {} vs fd {fd}",
                    g[at]
                );
            }
        }
    }

    #[test]
    fn bce_gradient_with_logistic_collapses_to_y_minus_t() {
        // the classic identity: dBCE/dx for y = σ(x) is y − t; check by
        // chaining our pieces
        use crate::transfer::Transfer;
        let x = random(Vec3::cube(3), 66);
        let t = Tensor3::filled(Vec3::cube(3), 1.0f32);
        let y = Transfer::Logistic.forward(&x, 0.0);
        let dy = Loss::BinaryCrossEntropy.gradient(&y, &t);
        let dx = Transfer::Logistic.backward(&dy, &y);
        for at in x.shape().iter() {
            let want = y.at(at) - t.at(at);
            assert!((dx.at(at) - want).abs() < 1e-3, "at {at}");
        }
    }

    #[test]
    fn hinge_is_zero_beyond_margin() {
        let y = Tensor3::filled(Vec3::one(), 2.0f32);
        let t = Tensor3::filled(Vec3::one(), 1.0f32);
        assert_eq!(Loss::SquaredHinge.value(&y, &t), 0.0);
        assert_eq!(Loss::SquaredHinge.gradient(&y, &t).at((0, 0, 0)), 0.0);
    }
}
