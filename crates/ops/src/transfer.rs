//! Transfer functions: bias + pointwise nonlinearity (paper §II) and
//! their Jacobians (§III-A) and bias gradients (§III-B).

use znn_tensor::Image;

/// The pointwise nonlinearities ZNN supports. The paper names the
/// logistic function, hyperbolic tangent and half-wave rectification
/// (ReLU) as the common choices; `Linear` (identity) and `LeakyRelu`
/// round out the set used by the examples and tests.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Transfer {
    /// Identity — the node only adds its bias.
    Linear,
    /// Logistic sigmoid `1 / (1 + e^{-x})`.
    Logistic,
    /// Hyperbolic tangent.
    Tanh,
    /// Half-wave rectification `max(0, x)`.
    Relu,
    /// Leaky rectifier: `x` for `x > 0`, `αx` otherwise.
    LeakyRelu(f32),
}

impl Transfer {
    /// The scalar function value.
    #[inline]
    pub fn apply(&self, x: f32) -> f32 {
        match *self {
            Transfer::Linear => x,
            Transfer::Logistic => 1.0 / (1.0 + (-x).exp()),
            Transfer::Tanh => x.tanh(),
            Transfer::Relu => x.max(0.0),
            Transfer::LeakyRelu(a) => {
                if x > 0.0 {
                    x
                } else {
                    a * x
                }
            }
        }
    }

    /// The derivative expressed in terms of the *output* `y = f(x)`.
    ///
    /// Every supported nonlinearity admits this form, which is why the
    /// forward pass only has to keep its output image around for the
    /// backward pass (a third of the memoization savings in Table II
    /// comes from exactly this kind of reuse).
    #[inline]
    pub fn derivative_from_output(&self, y: f32) -> f32 {
        match *self {
            Transfer::Linear => 1.0,
            Transfer::Logistic => y * (1.0 - y),
            Transfer::Tanh => 1.0 - y * y,
            Transfer::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Transfer::LeakyRelu(a) => {
                if y > 0.0 {
                    1.0
                } else {
                    a
                }
            }
        }
    }

    /// Forward pass over an image: `y = f(x + bias)` (§II, "adds a number
    /// called the bias to each voxel ... then applies a nonlinear
    /// function").
    ///
    /// Clone-then-apply rather than `map`: a pool-leased input yields a
    /// pool-leased output (tensor clones re-lease from their source),
    /// so transfer edges ride the §VII-C allocator like conv edges do.
    ///
    /// The piecewise-linear functions dispatch through `znn-simd`
    /// kernels (bitwise equal to the scalar [`Transfer::apply`] loop);
    /// the transcendental ones keep the scalar loop — `exp`/`tanh` have
    /// no lane-exact vector form.
    pub fn forward(&self, x: &Image, bias: f32) -> Image {
        let mut y = x.clone();
        match *self {
            Transfer::Linear => znn_simd::bias_add_f(y.as_mut_slice(), bias),
            Transfer::Relu => znn_simd::bias_relu_f(y.as_mut_slice(), bias),
            Transfer::LeakyRelu(a) => znn_simd::bias_leaky_relu_f(y.as_mut_slice(), bias, a),
            Transfer::Logistic | Transfer::Tanh => {
                for v in y.as_mut_slice() {
                    *v = self.apply(*v + bias);
                }
            }
        }
        y
    }

    /// Backward pass (§III-A): multiplies the incoming gradient by the
    /// transfer derivative, evaluated from the forward *output*.
    ///
    /// Clone-then-scale like [`Transfer::forward`], so a pooled
    /// gradient yields a pooled backward image. Every derivative here
    /// is a rational function of `y`, so all five variants dispatch
    /// through `znn-simd` (`Linear` multiplies by 1, a bitwise no-op).
    pub fn backward(&self, grad: &Image, fwd_output: &Image) -> Image {
        assert_eq!(grad.shape(), fwd_output.shape(), "shape mismatch");
        let mut out = grad.clone();
        match *self {
            Transfer::Linear => {}
            Transfer::Logistic => {
                znn_simd::logistic_deriv_mul_f(out.as_mut_slice(), fwd_output.as_slice())
            }
            Transfer::Tanh => znn_simd::tanh_deriv_mul_f(out.as_mut_slice(), fwd_output.as_slice()),
            Transfer::Relu => znn_simd::relu_deriv_mul_f(out.as_mut_slice(), fwd_output.as_slice()),
            Transfer::LeakyRelu(a) => {
                znn_simd::leaky_relu_deriv_mul_f(out.as_mut_slice(), fwd_output.as_slice(), a)
            }
        }
        out
    }

    /// Bias gradient (§III-B): the sum of all voxels of the backward
    /// image at the node — i.e. of the gradient with respect to the
    /// pre-nonlinearity activation, which is exactly what
    /// [`Transfer::backward`] produces.
    pub fn bias_gradient(backward_image: &Image) -> f32 {
        backward_image.sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use znn_tensor::ops::random;
    use znn_tensor::{Tensor3, Vec3};

    const ALL: [Transfer; 5] = [
        Transfer::Linear,
        Transfer::Logistic,
        Transfer::Tanh,
        Transfer::Relu,
        Transfer::LeakyRelu(0.1),
    ];

    #[test]
    fn scalar_values_are_sane() {
        assert_eq!(Transfer::Relu.apply(-2.0), 0.0);
        assert_eq!(Transfer::Relu.apply(3.0), 3.0);
        assert!((Transfer::Logistic.apply(0.0) - 0.5).abs() < 1e-6);
        assert!((Transfer::Tanh.apply(0.0)).abs() < 1e-6);
        assert_eq!(Transfer::LeakyRelu(0.1).apply(-10.0), -1.0);
        assert_eq!(Transfer::Linear.apply(1.25), 1.25);
    }

    #[test]
    fn derivative_from_output_matches_finite_differences() {
        for f in ALL {
            for &x in &[-2.0f32, -0.5, 0.3, 1.7] {
                let eps = 1e-3;
                let fd = (f.apply(x + eps) - f.apply(x - eps)) / (2.0 * eps);
                let y = f.apply(x);
                let an = f.derivative_from_output(y);
                assert!(
                    (an - fd).abs() < 1e-2,
                    "{f:?} at {x}: analytic {an} vs fd {fd}"
                );
            }
        }
    }

    #[test]
    fn forward_applies_bias_before_nonlinearity() {
        let x = Tensor3::from_vec(Vec3::new(1, 1, 2), vec![-1.0, 1.0]);
        let y = Transfer::Relu.forward(&x, 1.0);
        assert_eq!(y.as_slice(), &[0.0, 2.0]);
    }

    #[test]
    fn backward_scales_gradient_by_derivative() {
        let x = random(Vec3::cube(3), 51);
        for f in ALL {
            let y = f.forward(&x, 0.1);
            let g = random(y.shape(), 52);
            let back = f.backward(&g, &y);
            for at in x.shape().iter() {
                let want = g.at(at) * f.derivative_from_output(y.at(at));
                assert!((back.at(at) - want).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn bias_gradient_matches_finite_differences() {
        // L = <f(x + b), g>; dL/db should equal sum(backward image)
        let x = random(Vec3::cube(3), 53);
        let g = random(Vec3::cube(3), 54);
        for f in ALL {
            let b = 0.2f32;
            let back = f.backward(&g, &f.forward(&x, b));
            let analytic = Transfer::bias_gradient(&back);
            let eps = 1e-3f32;
            let lp = znn_tensor::ops::dot(&f.forward(&x, b + eps), &g);
            let lm = znn_tensor::ops::dot(&f.forward(&x, b - eps), &g);
            let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!(
                (analytic - fd).abs() < 5e-2 * (1.0 + fd.abs()),
                "{f:?}: analytic {analytic} vs fd {fd}"
            );
        }
    }
}
