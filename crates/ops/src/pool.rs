//! Max-pooling and its Jacobian (paper §II, §III-A).
//!
//! Max-pooling divides an `n³` image into `p³` blocks (each extent must
//! divide evenly) and keeps the maximum of each block. The backward pass
//! routes each output gradient voxel to the position that won the
//! forward max and zeroes everything else.

use znn_tensor::{Image, Tensor3, Vec3};

/// Result of a max-pooling forward pass: the pooled image plus, for each
/// output voxel, the linear index (into the *input*) of the winning
/// voxel — the state the Jacobian needs.
pub struct PoolResult {
    /// Pooled image of shape `n / p`.
    pub output: Image,
    /// For each output voxel, the linear input index of its maximum.
    pub argmax: Tensor3<u32>,
}

/// Max-pooling forward pass with block shape `p`.
///
/// Panics if any extent of the input is not divisible by `p` (the
/// paper's precondition).
pub fn max_pool(img: &Image, p: Vec3) -> PoolResult {
    let n = img.shape();
    let out_shape = n
        .pooled(p)
        .unwrap_or_else(|| panic!("pool {p} does not divide image {n}"));
    let mut output = Tensor3::<f32>::zeros(out_shape);
    let mut argmax = Tensor3::<u32>::zeros(out_shape);
    for o in out_shape.iter() {
        let base = o * p;
        let mut best = f32::NEG_INFINITY;
        let mut best_at = 0u32;
        for d in p.iter() {
            let at = base + d;
            let v = img.at(at);
            if v > best {
                best = v;
                best_at = n.offset(at) as u32;
            }
        }
        output[o] = best;
        argmax[o] = best_at;
    }
    PoolResult { output, argmax }
}

/// Max-pooling Jacobian: expands an output gradient of shape `n/p` back
/// to shape `n`, placing each value at the voxel recorded in `argmax`
/// and zero elsewhere (§III-A).
pub fn max_pool_backward(grad: &Image, argmax: &Tensor3<u32>, input_shape: Vec3) -> Image {
    assert_eq!(grad.shape(), argmax.shape(), "gradient/argmax mismatch");
    let mut out = Tensor3::<f32>::zeros(input_shape);
    let out_data = out.as_mut_slice();
    for (&g, &ix) in grad.as_slice().iter().zip(argmax.as_slice()) {
        // Within a block the argmax is unique, and blocks are disjoint,
        // so plain assignment would do; accumulate anyway for safety
        // under ties in pathological inputs.
        out_data[ix as usize] += g;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use znn_tensor::ops::{dot, random};

    #[test]
    fn pools_blocks_to_their_maximum() {
        let img = Tensor3::from_vec(
            Vec3::new(1, 2, 4),
            vec![1.0, 5.0, 2.0, 0.0, -1.0, -2.0, 7.0, 3.0],
        );
        let r = max_pool(&img, Vec3::new(1, 2, 2));
        assert_eq!(r.output.shape(), Vec3::new(1, 1, 2));
        assert_eq!(r.output.as_slice(), &[5.0, 7.0]);
    }

    #[test]
    fn argmax_points_at_the_winner() {
        let img = random(Vec3::cube(4), 31);
        let r = max_pool(&img, Vec3::cube(2));
        for o in r.output.shape().iter() {
            let ix = r.argmax[o] as usize;
            assert_eq!(img.as_slice()[ix], r.output[o]);
        }
    }

    #[test]
    #[should_panic(expected = "does not divide")]
    fn rejects_indivisible_shapes() {
        let _ = max_pool(&random(Vec3::cube(5), 1), Vec3::cube(2));
    }

    #[test]
    fn backward_scatters_to_argmax_only() {
        let img = random(Vec3::cube(4), 32);
        let r = max_pool(&img, Vec3::cube(2));
        let g = random(r.output.shape(), 33);
        let back = max_pool_backward(&g, &r.argmax, img.shape());
        // nonzero count equals number of output voxels (all argmaxes
        // distinct since blocks are disjoint)
        let nonzero = back.as_slice().iter().filter(|&&v| v != 0.0).count();
        assert_eq!(nonzero, g.len());
        assert!((back.sum() - g.sum()).abs() < 1e-4);
    }

    #[test]
    fn backward_is_jacobian_transpose() {
        // <pool(x), g> must have gradient wrt x equal to backward(g);
        // verify by finite differences at non-tied points.
        let x = random(Vec3::new(2, 4, 4), 34);
        let r = max_pool(&x, Vec3::new(1, 2, 2));
        let g = random(r.output.shape(), 35);
        let grad = max_pool_backward(&g, &r.argmax, x.shape());
        let eps = 1e-3f32;
        for at in [Vec3::zero(), Vec3::new(1, 3, 2), Vec3::new(0, 2, 1)] {
            let mut xp = x.clone();
            xp[at] += eps;
            let mut xm = x.clone();
            xm[at] -= eps;
            let lp = dot(&max_pool(&xp, Vec3::new(1, 2, 2)).output, &g);
            let lm = dot(&max_pool(&xm, Vec3::new(1, 2, 2)).output, &g);
            let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!(
                (grad[at] - fd).abs() < 1e-3,
                "at {at}: analytic {} vs fd {fd}",
                grad[at]
            );
        }
    }

    #[test]
    fn unit_pool_is_identity() {
        let img = random(Vec3::cube(3), 36);
        let r = max_pool(&img, Vec3::one());
        assert_eq!(r.output, img);
    }
}
