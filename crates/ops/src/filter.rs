//! Max-filtering and its Jacobian (paper §II, §III-A).
//!
//! Max-filtering computes the maximum of a sliding `k³` window at every
//! location, producing `n − s·(k−1)` voxels at window dilation `s` (the
//! sparse windows that pair with skip-kernel convolutions in §II-A).
//! Following the paper, 3D filtering is decomposed into sequential 1D
//! filtering along each of the three axes.
//!
//! Two 1D algorithms are provided:
//!
//! * [`FilterImpl::Deque`] — a monotonic deque, O(1) amortized per
//!   element (the default),
//! * [`FilterImpl::Heap`] — the paper's ordered-window variant, O(log k)
//!   per element ("for each array we keep a heap of size k"); kept for
//!   the ablation benchmark.
//!
//! Both track, for every output voxel, the linear index of the winning
//! *input* voxel, composed across the three passes, so the backward pass
//! can scatter-accumulate gradients to the right place.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use znn_tensor::lines::{Axis, LineSpec};
use znn_tensor::{Image, Tensor3, Vec3};

/// Which 1D sliding-maximum algorithm to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FilterImpl {
    /// Monotonic deque, O(n) per line.
    #[default]
    Deque,
    /// Ordered multiset ("heap of size k"), O(n log k) per line — the
    /// variant described in the paper.
    Heap,
}

/// Result of a max-filter forward pass.
pub struct FilterResult {
    /// Filtered image of shape `n − s·(k−1)`.
    pub output: Image,
    /// For each output voxel, the linear index (into the original input)
    /// of the voxel that supplied the maximum. Ties resolve to the
    /// earliest voxel in scan order, deterministically.
    pub argmax: Tensor3<u32>,
}

/// Total-order key for `f32` values (NaN-free inputs assumed; NaN sorts
/// via `total_cmp` and stays deterministic anyway).
#[derive(Clone, Copy, PartialEq)]
struct OrdF32(f32);

impl Eq for OrdF32 {}
impl PartialOrd for OrdF32 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF32 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// 1D dilated sliding maximum over `(vals, idxs)`, writing `out_len`
/// results. `which` selects the algorithm.
fn line_max(
    vals: &[f32],
    idxs: &[u32],
    k: usize,
    s: usize,
    out_vals: &mut [f32],
    out_idxs: &mut [u32],
    which: FilterImpl,
) {
    let n = vals.len();
    let m = out_vals.len();
    debug_assert_eq!(m, n - s * (k - 1));
    if k == 1 {
        out_vals.copy_from_slice(vals);
        out_idxs.copy_from_slice(idxs);
        return;
    }
    // Windows with the same residue o mod s slide over the subsequence
    // vals[r], vals[r+s], ... — run the 1D algorithm per residue class.
    for r in 0..s.min(m) {
        let class_len = (n - r).div_ceil(s);
        match which {
            FilterImpl::Deque => {
                // positions j index the subsequence a[j] = vals[r + j*s]
                let mut dq: VecDeque<usize> = VecDeque::new();
                for j in 0..class_len {
                    let v = vals[r + j * s];
                    // strict '<' keeps the earliest among equals in front
                    while let Some(&b) = dq.back() {
                        if vals[r + b * s] < v {
                            dq.pop_back();
                        } else {
                            break;
                        }
                    }
                    dq.push_back(j);
                    // evict positions that fell out of the window
                    // [j+1-k, j] for the next output
                    if let Some(&f) = dq.front() {
                        if f + k <= j {
                            dq.pop_front();
                        }
                    }
                    if j + 1 >= k {
                        let o = r + (j + 1 - k) * s;
                        if o < m {
                            let f = *dq.front().expect("window is non-empty");
                            out_vals[o] = vals[r + f * s];
                            out_idxs[o] = idxs[r + f * s];
                        }
                    }
                }
            }
            FilterImpl::Heap => {
                // ordered multiset keyed on (value, Reverse(position)) so
                // the greatest key is the max value with the earliest
                // position — each element inserted and removed at most
                // once, O(log k) each, as in the paper.
                let mut set: BTreeMap<(OrdF32, std::cmp::Reverse<usize>), ()> = BTreeMap::new();
                for j in 0..class_len {
                    set.insert((OrdF32(vals[r + j * s]), std::cmp::Reverse(j)), ());
                    if j >= k {
                        set.remove(&(OrdF32(vals[r + (j - k) * s]), std::cmp::Reverse(j - k)));
                    }
                    if j + 1 >= k {
                        let o = r + (j + 1 - k) * s;
                        if o < m {
                            let (&(v, std::cmp::Reverse(p)), _) =
                                set.last_key_value().expect("window is non-empty");
                            out_vals[o] = v.0;
                            out_idxs[o] = idxs[r + p * s];
                        }
                    }
                }
            }
        }
    }
}

/// Max-filter forward pass with window `k` and per-axis dilation `s`.
pub fn max_filter(img: &Image, k: Vec3, s: Vec3, which: FilterImpl) -> FilterResult {
    let n = img.shape();
    assert!(
        k.dilated(s).le(n),
        "window {k} at sparsity {s} larger than image {n}"
    );
    let mut vals = img.clone();
    let mut idxs = Tensor3::<u32>::from_fn(n, |at| n.offset(at) as u32);
    for axis in Axis::ALL {
        let a = axis as usize;
        if k[a] == 1 {
            continue;
        }
        let cur = vals.shape();
        let mut out_shape = cur;
        out_shape[a] = cur[a] - s[a] * (k[a] - 1);
        let in_spec = LineSpec::new(cur, axis);
        let out_spec = LineSpec::new(out_shape, axis);
        let mut next_vals = Tensor3::<f32>::zeros(out_shape);
        let mut next_idxs = Tensor3::<u32>::zeros(out_shape);
        let mut vbuf = vec![0.0f32; in_spec.len];
        let mut ibuf = vec![0u32; in_spec.len];
        let mut ovbuf = vec![0.0f32; out_spec.len];
        let mut oibuf = vec![0u32; out_spec.len];
        for i in 0..in_spec.count {
            in_spec.read_line(&vals, i, &mut vbuf);
            in_spec.read_line(&idxs, i, &mut ibuf);
            line_max(&vbuf, &ibuf, k[a], s[a], &mut ovbuf, &mut oibuf, which);
            out_spec.write_line(&mut next_vals, i, &ovbuf);
            out_spec.write_line(&mut next_idxs, i, &oibuf);
        }
        vals = next_vals;
        idxs = next_idxs;
    }
    FilterResult {
        output: vals,
        argmax: idxs,
    }
}

/// Max-filter Jacobian: scatter-*accumulates* each output gradient voxel
/// onto the input voxel that won its window (§III-A — unlike pooling,
/// windows overlap, so one input voxel can receive many contributions).
pub fn max_filter_backward(grad: &Image, argmax: &Tensor3<u32>, input_shape: Vec3) -> Image {
    assert_eq!(grad.shape(), argmax.shape(), "gradient/argmax mismatch");
    let mut out = Tensor3::<f32>::zeros(input_shape);
    let out_data = out.as_mut_slice();
    for (&g, &ix) in grad.as_slice().iter().zip(argmax.as_slice()) {
        out_data[ix as usize] += g;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use znn_tensor::ops::{dot, random};
    use znn_tensor::pad;

    /// Brute-force dilated max filter with earliest-winner tie-breaks.
    fn reference(img: &Image, k: Vec3, s: Vec3) -> FilterResult {
        let n = img.shape();
        let out_shape = n.valid_conv(k.dilated(s)).unwrap();
        let mut output = Tensor3::<f32>::zeros(out_shape);
        let mut argmax = Tensor3::<u32>::zeros(out_shape);
        for o in out_shape.iter() {
            let mut best = f32::NEG_INFINITY;
            let mut best_at = 0u32;
            for d in k.iter() {
                let at = o + d * s;
                let v = img.at(at);
                if v > best {
                    best = v;
                    best_at = n.offset(at) as u32;
                }
            }
            output[o] = best;
            argmax[o] = best_at;
        }
        FilterResult { output, argmax }
    }

    #[test]
    fn dense_filter_matches_brute_force_both_impls() {
        for which in [FilterImpl::Deque, FilterImpl::Heap] {
            for (n, k) in [
                (Vec3::cube(6), Vec3::cube(2)),
                (Vec3::new(5, 7, 9), Vec3::new(2, 3, 4)),
                (Vec3::flat(10, 10), Vec3::flat(3, 3)),
            ] {
                let img = random(n, 41);
                let got = max_filter(&img, k, Vec3::one(), which);
                let want = reference(&img, k, Vec3::one());
                assert_eq!(got.output, want.output, "{which:?} n={n} k={k}");
                assert_eq!(got.argmax, want.argmax, "{which:?} n={n} k={k}");
            }
        }
    }

    #[test]
    fn sparse_filter_matches_brute_force_both_impls() {
        for which in [FilterImpl::Deque, FilterImpl::Heap] {
            for s in [Vec3::cube(2), Vec3::new(1, 2, 3)] {
                let n = Vec3::cube(11);
                let k = Vec3::cube(3);
                let img = random(n, 42);
                let got = max_filter(&img, k, s, which);
                let want = reference(&img, k, s);
                assert_eq!(got.output, want.output, "{which:?} s={s}");
                assert_eq!(got.argmax, want.argmax, "{which:?} s={s}");
            }
        }
    }

    #[test]
    fn ties_resolve_to_earliest_voxel() {
        let img = Tensor3::filled(Vec3::new(1, 1, 5), 1.0f32);
        for which in [FilterImpl::Deque, FilterImpl::Heap] {
            let r = max_filter(&img, Vec3::new(1, 1, 3), Vec3::one(), which);
            assert_eq!(r.argmax.as_slice(), &[0, 1, 2], "{which:?}");
        }
    }

    #[test]
    fn heap_and_deque_agree_on_adversarial_patterns() {
        // monotone up, monotone down, sawtooth, constant
        let patterns: Vec<Vec<f32>> = vec![
            (0..20).map(|i| i as f32).collect(),
            (0..20).map(|i| -(i as f32)).collect(),
            (0..20).map(|i| (i % 3) as f32).collect(),
            vec![2.5; 20],
        ];
        for p in patterns {
            let img = Tensor3::from_vec(Vec3::new(1, 1, p.len()), p);
            for k in [2usize, 3, 5] {
                let a = max_filter(&img, Vec3::new(1, 1, k), Vec3::one(), FilterImpl::Deque);
                let b = max_filter(&img, Vec3::new(1, 1, k), Vec3::one(), FilterImpl::Heap);
                assert_eq!(a.output, b.output);
                assert_eq!(a.argmax, b.argmax);
            }
        }
    }

    #[test]
    fn max_pool_is_filter_sampled_on_the_block_lattice() {
        // pooling with p equals max-filtering with window p sampled at
        // stride p — the relationship behind Fig 2's equivalence
        let img = random(Vec3::cube(8), 43);
        let p = Vec3::cube(2);
        let pooled = crate::pool::max_pool(&img, p);
        let filtered = max_filter(&img, p, Vec3::one(), FilterImpl::Deque);
        let sampled = pad::gather_strided(&filtered.output, Vec3::zero(), p, pooled.output.shape());
        assert_eq!(sampled, pooled.output);
    }

    #[test]
    fn backward_accumulates_overlapping_windows() {
        // constant image: every window picks its first voxel; with k=2 the
        // first voxel of the line gets 1 window, interior ones up to 1 —
        // use a decreasing line so voxel 0 wins all windows it is in
        let img = Tensor3::from_vec(Vec3::new(1, 1, 4), vec![9.0, 1.0, 0.5, 0.2]);
        let r = max_filter(&img, Vec3::new(1, 1, 2), Vec3::one(), FilterImpl::Deque);
        assert_eq!(r.output.as_slice(), &[9.0, 1.0, 0.5]);
        let g = Tensor3::from_vec(Vec3::new(1, 1, 3), vec![1.0, 2.0, 4.0]);
        let back = max_filter_backward(&g, &r.argmax, img.shape());
        assert_eq!(back.as_slice(), &[1.0, 2.0, 4.0, 0.0]);
        // mass is conserved
        assert_eq!(back.sum(), g.sum());
    }

    #[test]
    fn backward_is_jacobian_transpose() {
        // values must be separated by more than the FD step so the
        // perturbation cannot flip any window's argmax
        let shape = Vec3::new(2, 5, 5);
        let noise = random(shape, 44);
        let x = Tensor3::from_fn(shape, |at| {
            (shape.offset(at) as f32 * 0.137) % 7.0 + 0.01 * noise.at(at)
        });
        let k = Vec3::new(1, 2, 2);
        let r = max_filter(&x, k, Vec3::one(), FilterImpl::Deque);
        let g = random(r.output.shape(), 45);
        let grad = max_filter_backward(&g, &r.argmax, x.shape());
        let eps = 1e-3f32;
        for at in [Vec3::new(0, 0, 0), Vec3::new(1, 2, 3), Vec3::new(1, 4, 4)] {
            let mut xp = x.clone();
            xp[at] += eps;
            let mut xm = x.clone();
            xm[at] -= eps;
            let lp = dot(&max_filter(&xp, k, Vec3::one(), FilterImpl::Deque).output, &g);
            let lm = dot(&max_filter(&xm, k, Vec3::one(), FilterImpl::Deque).output, &g);
            let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!(
                (grad[at] - fd).abs() < 1e-2,
                "at {at}: analytic {} vs fd {fd}",
                grad[at]
            );
        }
    }

    #[test]
    fn unit_window_is_identity() {
        let img = random(Vec3::cube(4), 46);
        let r = max_filter(&img, Vec3::one(), Vec3::one(), FilterImpl::Deque);
        assert_eq!(r.output, img);
    }
}
