//! Serving counters: every robustness layer reports what it did.

use std::sync::atomic::{AtomicU64, Ordering};

/// Internal atomic counters, bumped lock-free by submitters and
/// workers.
#[derive(Default)]
pub(crate) struct Counters {
    pub submitted: AtomicU64,
    pub admitted: AtomicU64,
    pub completed: AtomicU64,
    pub shed_overload: AtomicU64,
    pub deadline_missed: AtomicU64,
    pub lease_refused: AtomicU64,
    pub panicked: AtomicU64,
    pub invalid: AtomicU64,
    pub shutdown_rejected: AtomicU64,
    pub degraded_batches: AtomicU64,
}

impl Counters {
    pub(crate) fn snapshot(&self, queue_depth: usize, watermark: usize) -> ServeStats {
        ServeStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            shed_overload: self.shed_overload.load(Ordering::Relaxed),
            deadline_missed: self.deadline_missed.load(Ordering::Relaxed),
            lease_refused: self.lease_refused.load(Ordering::Relaxed),
            panicked: self.panicked.load(Ordering::Relaxed),
            invalid: self.invalid.load(Ordering::Relaxed),
            shutdown_rejected: self.shutdown_rejected.load(Ordering::Relaxed),
            degraded_batches: self.degraded_batches.load(Ordering::Relaxed),
            queue_depth,
            watermark,
        }
    }
}

/// A point-in-time snapshot of the serving counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests offered to [`crate::Server::submit`].
    pub submitted: u64,
    /// Requests that passed admission control.
    pub admitted: u64,
    /// Requests answered with a dense output volume.
    pub completed: u64,
    /// Requests shed by admission control ([`crate::Rejected::Overloaded`]).
    pub shed_overload: u64,
    /// Requests cancelled at a deadline checkpoint.
    pub deadline_missed: u64,
    /// Requests refused a buffer lease (injected fault, shed typed).
    pub lease_refused: u64,
    /// Requests whose evaluation panicked (contained per request).
    pub panicked: u64,
    /// Requests smaller than the field of view.
    pub invalid: u64,
    /// Requests failed because the server was shutting down.
    pub shutdown_rejected: u64,
    /// Batches run at degraded (halved) batch/block size.
    pub degraded_batches: u64,
    /// Queue depth when the snapshot was taken — the admission-control
    /// signal itself.
    pub queue_depth: usize,
    /// The effective admission watermark.
    pub watermark: usize,
}

impl ServeStats {
    /// Fraction of submitted requests shed by admission control — the
    /// first-class overload metric.
    pub fn shed_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.shed_overload as f64 / self.submitted as f64
        }
    }

    /// Fraction of admitted requests that missed their deadline.
    pub fn deadline_miss_rate(&self) -> f64 {
        if self.admitted == 0 {
            0.0
        } else {
            self.deadline_missed as f64 / self.admitted as f64
        }
    }

    /// A human-readable multi-line report (the serving half of the
    /// trainer's `--pool-report` output).
    pub fn report(&self) -> String {
        format!(
            "serve: submitted {}, admitted {}, completed {}\n\
             shed: overload {} ({:.1}%), deadline {} ({:.1}%), lease {}, \
             panicked {}, invalid {}, shutdown {}\n\
             queue: depth {} / watermark {}, degraded batches {}\n",
            self.submitted,
            self.admitted,
            self.completed,
            self.shed_overload,
            100.0 * self.shed_rate(),
            self.deadline_missed,
            100.0 * self.deadline_miss_rate(),
            self.lease_refused,
            self.panicked,
            self.invalid,
            self.shutdown_rejected,
            self.queue_depth,
            self.watermark,
            self.degraded_batches,
        )
    }
}
