//! Overload-safe batched dense-inference serving.
//!
//! `znn-serve` productionizes the dense sliding-window workload
//! ([`znn_core::DenseNet`], the Fig. 2 one-pass equivalent of sliding
//! a recognition net over every output position) behind a bounded
//! MPMC request queue and a fixed set of batch workers, modeled on the
//! fixed-worker/batched-input/fan-back server shape of holmes'
//! parallel search server. All workers share one read-only-after-warmup
//! memoized kernel-spectrum cache and lease every buffer from the
//! pooled allocator, so steady-state serving allocates nothing and
//! resident memory stays flat under sustained traffic.
//!
//! Robustness is the point, enforced at four layers:
//!
//! 1. **Admission control** — [`Server::submit`] polls the queue's
//!    lock-free depth gauge and sheds with [`Rejected::Overloaded`]
//!    once the watermark is reached, *before* latency collapses. The
//!    shed rate is a first-class stat ([`ServeStats::shed_rate`]).
//! 2. **Graceful degradation** — past a second watermark, workers
//!    halve their batch and output-block sizes (faster turnaround,
//!    finer deadline checks) before any load is shed.
//! 3. **Deadlines** — every request may carry a latency budget,
//!    checked cooperatively at output-block boundaries; an expired
//!    request cancels mid-volume ([`Rejected::DeadlineExceeded`]),
//!    returns its pooled leases by RAII, and never blocks the batch
//!    behind it.
//! 4. **Panic containment** — each request is evaluated under
//!    `catch_unwind` with RAII-lease discipline: one malformed request
//!    poisons only its own response ([`Rejected::Panicked`]), never
//!    the server, and leaks zero pool bytes.
//!
//! Deterministic fault injection ([`znn_fault`]) drives all of it in
//! tests and the `serve_soak` bench: `SlowTask` stalls a request
//! mid-volume, `TaskPanic` panics it, `RejectLease` refuses its
//! buffer lease — keyed by request id, with recurring and
//! seeded-probabilistic schedules.
//!
//! ```
//! use std::sync::Arc;
//! use znn_core::{DenseConfig, DenseNet};
//! use znn_graph::NetBuilder;
//! use znn_ops::Transfer;
//! use znn_serve::{ServeConfig, Server};
//! use znn_tensor::{ops, Vec3};
//!
//! let graph = NetBuilder::new("net", 1)
//!     .conv(1, Vec3::flat(3, 3))
//!     .transfer(Transfer::Tanh)
//!     .build()
//!     .unwrap()
//!     .0;
//! let net = Arc::new(DenseNet::new(graph, 7, DenseConfig::default()).unwrap());
//! net.warmup(Vec3::flat(16, 16));
//! let server = Server::start(Arc::clone(&net), ServeConfig::default());
//! let out = server
//!     .submit(ops::random(Vec3::flat(16, 16), 1), None)
//!     .unwrap()
//!     .wait()
//!     .unwrap();
//! assert_eq!(Some(out.shape()), net.output_shape_for(Vec3::flat(16, 16)));
//! ```

#![warn(missing_docs)]

mod queue;
mod server;
mod stats;

pub use queue::{BoundedQueue, PushError};
pub use server::{Rejected, ServeConfig, Server, Ticket};
pub use stats::ServeStats;
