//! A bounded MPMC request queue with a lock-free depth gauge.
//!
//! The queue is deliberately *boring*: a `VecDeque` under a mutex with
//! a condvar for blocking consumers. What makes it a serving queue is
//! the contract around it — a hard capacity so memory is bounded, a
//! [`BoundedQueue::depth`] gauge readable without the lock (the
//! admission-control signal, mirroring `SchedStats::queue_depth` in
//! the training schedulers), and non-blocking producers: `try_push`
//! never waits, because a server that blocks its admission path has
//! already lost the overload fight.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Why a [`BoundedQueue::try_push`] was refused; carries the rejected
/// item back to the caller.
pub enum PushError<T> {
    /// The queue is at capacity.
    Full(T),
    /// The queue was closed by [`BoundedQueue::close`].
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer / multi-consumer FIFO.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    capacity: usize,
    /// Lock-free mirror of `state.items.len()`, polled by admission
    /// control on every submit without touching the queue lock.
    depth: AtomicUsize,
}

impl<T> BoundedQueue<T> {
    /// A new queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity,
            depth: AtomicUsize::new(0),
        }
    }

    /// The hard capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue depth, without taking the lock. May lag the true
    /// length by in-flight operations — admission control only needs a
    /// watermark, not an exact count.
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Acquire)
    }

    /// Enqueues `item` if there is room; never blocks.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut s = self.state.lock();
        if s.closed {
            return Err(PushError::Closed(item));
        }
        if s.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        s.items.push_back(item);
        self.depth.store(s.items.len(), Ordering::Release);
        drop(s);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues, blocking until an item arrives. Returns `None` once
    /// the queue is closed *and* drained — the consumer's signal to
    /// exit.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state.lock();
        loop {
            if let Some(item) = s.items.pop_front() {
                self.depth.store(s.items.len(), Ordering::Release);
                return Some(item);
            }
            if s.closed {
                return None;
            }
            self.not_empty.wait(&mut s);
        }
    }

    /// Dequeues without blocking.
    pub fn try_pop(&self) -> Option<T> {
        let mut s = self.state.lock();
        let item = s.items.pop_front();
        if item.is_some() {
            self.depth.store(s.items.len(), Ordering::Release);
        }
        item
    }

    /// Closes the queue: producers are refused from now on, consumers
    /// drain what is left and then see `None`.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.not_empty.notify_all();
    }

    /// Removes and returns everything still queued (used at shutdown
    /// to fail pending requests with a typed rejection).
    pub fn drain(&self) -> Vec<T> {
        let mut s = self.state.lock();
        let items = s.items.drain(..).collect();
        self.depth.store(0, Ordering::Release);
        items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let q = BoundedQueue::new(4);
        for i in 0..4 {
            assert!(q.try_push(i).is_ok());
        }
        assert_eq!(q.depth(), 4);
        assert!(matches!(q.try_push(9), Err(PushError::Full(9))));
        assert_eq!(q.try_pop(), Some(0));
        assert_eq!(q.depth(), 3);
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn close_drains_then_none() {
        let q = BoundedQueue::new(4);
        q.try_push(1).ok();
        q.try_push(2).ok();
        q.close();
        assert!(matches!(q.try_push(3), Err(PushError::Closed(3))));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocking_pop_wakes_on_push() {
        let q = Arc::new(BoundedQueue::new(2));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.try_push(7).ok();
        assert_eq!(h.join().unwrap(), Some(7));
    }

    #[test]
    fn drain_empties_and_resets_depth() {
        let q = BoundedQueue::new(4);
        q.try_push(1).ok();
        q.try_push(2).ok();
        assert_eq!(q.drain(), vec![1, 2]);
        assert_eq!(q.depth(), 0);
    }
}
