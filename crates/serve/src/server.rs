//! The serving core: admission control, batch workers, deadlines,
//! degradation, and request-scoped panic containment.

use crate::queue::{BoundedQueue, PushError};
use crate::stats::{Counters, ServeStats};
use parking_lot::{Condvar, Mutex};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use znn_core::DenseNet;
use znn_fault::{FaultKind, FaultPlan};
use znn_tensor::{Image, Vec3};

/// Why a request was refused or abandoned. Every rejection is typed:
/// the client always learns *which* robustness layer fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejected {
    /// Admission control: the queue depth reached the watermark. Try
    /// again later — accepting the request would have collapsed p99
    /// for everyone already queued.
    Overloaded {
        /// Queue depth observed at admission.
        queue_depth: usize,
        /// The configured admission watermark.
        watermark: usize,
    },
    /// The request's deadline expired; evaluation was cancelled at an
    /// output-block boundary and every pooled lease was returned.
    DeadlineExceeded {
        /// Output blocks completed before the deadline fired.
        blocks_done: usize,
        /// Total output blocks the volume needed.
        blocks_total: usize,
    },
    /// The input volume is smaller than the network's field of view.
    Invalid {
        /// The offending input shape.
        shape: Vec3,
        /// The minimum (field-of-view) shape.
        fov: Vec3,
    },
    /// A buffer lease was refused on the request path (injected via
    /// [`znn_fault::FaultKind::RejectLease`]); the request was shed
    /// gracefully instead of unwinding.
    LeaseRefused,
    /// The request panicked while being evaluated. The panic was
    /// contained to this response; the server keeps serving.
    Panicked {
        /// The panic payload, if it was a string.
        message: String,
    },
    /// The server is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejected::Overloaded {
                queue_depth,
                watermark,
            } => write!(f, "overloaded: queue depth {queue_depth} >= watermark {watermark}"),
            Rejected::DeadlineExceeded {
                blocks_done,
                blocks_total,
            } => write!(f, "deadline exceeded after {blocks_done}/{blocks_total} blocks"),
            Rejected::Invalid { shape, fov } => {
                write!(f, "invalid request: input {shape} smaller than field of view {fov}")
            }
            Rejected::LeaseRefused => write!(f, "buffer lease refused"),
            Rejected::Panicked { message } => write!(f, "request panicked: {message}"),
            Rejected::ShuttingDown => write!(f, "server shutting down"),
        }
    }
}

impl std::error::Error for Rejected {}

/// Server configuration. The defaults are sized for tests; a real
/// deployment tunes capacity and watermark to its latency budget.
#[derive(Clone)]
pub struct ServeConfig {
    /// Number of batch worker threads. `0` spawns none — requests are
    /// then driven deterministically with [`Server::run_pending`]
    /// (robustness tests use this to pin exact orderings).
    pub workers: usize,
    /// Hard bound on queued requests (memory is bounded by
    /// `queue_capacity × max request bytes`).
    pub queue_capacity: usize,
    /// Admission watermark: a submit observing `depth >= watermark` is
    /// refused with [`Rejected::Overloaded`]. `0` means "use
    /// `queue_capacity`".
    pub admission_watermark: usize,
    /// Requests a worker claims per batch (amortizes queue traffic;
    /// batched requests share the warm kernel-spectrum cache).
    pub max_batch: usize,
    /// Output-block shape for evaluation — also the deadline-check
    /// granularity: smaller blocks mean finer-grained cancellation.
    pub block: Vec3,
    /// Degradation ladder: when the queue depth at batch-assembly time
    /// reaches this value, workers halve their batch and block sizes
    /// (finer deadline checks, faster first responses) *before* any
    /// load is shed. `None` disables degradation.
    pub degrade_watermark: Option<usize>,
    /// Deterministic fault injection on the request path, keyed by
    /// request id ([`FaultKind::SlowTask`], [`FaultKind::TaskPanic`],
    /// [`FaultKind::RejectLease`]).
    pub faults: Option<Arc<FaultPlan>>,
    /// Stall injected into a request hit by
    /// [`FaultKind::SlowTask`] (applied once, after its first output
    /// block).
    pub slow_task: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 8,
            admission_watermark: 0,
            max_batch: 4,
            block: Vec3::cube(16),
            degrade_watermark: None,
            faults: None,
            slow_task: Duration::from_millis(20),
        }
    }
}

/// One-shot response slot shared between a worker and the waiting
/// client.
struct TicketInner {
    slot: Mutex<Option<(Result<Image, Rejected>, Instant)>>,
    ready: Condvar,
}

impl TicketInner {
    fn fulfill(&self, result: Result<Image, Rejected>) {
        *self.slot.lock() = Some((result, Instant::now()));
        self.ready.notify_all();
    }
}

/// A claim on an admitted request's eventual response.
pub struct Ticket {
    inner: Arc<TicketInner>,
    /// Server-assigned request id (also the fault-injection tick).
    pub id: u64,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("id", &self.id)
            .field("ready", &self.is_ready())
            .finish()
    }
}


impl Ticket {
    /// Blocks until the request completes, is rejected, or panics.
    pub fn wait(self) -> Result<Image, Rejected> {
        self.wait_timed().0
    }

    /// Like [`Ticket::wait`], but also returns the instant the worker
    /// produced the response — benches compute service latency from it
    /// without charging the client's own collection lag.
    pub fn wait_timed(self) -> (Result<Image, Rejected>, Instant) {
        let mut slot = self.inner.slot.lock();
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            self.inner.ready.wait(&mut slot);
        }
    }

    /// Non-blocking probe: `true` once a response is available.
    pub fn is_ready(&self) -> bool {
        self.inner.slot.lock().is_some()
    }
}

/// A queued request.
struct Job {
    id: u64,
    image: Image,
    deadline: Option<Instant>,
    ticket: Arc<TicketInner>,
}

struct Shared {
    net: Arc<DenseNet>,
    cfg: ServeConfig,
    watermark: usize,
    queue: BoundedQueue<Job>,
    counters: Counters,
    next_id: AtomicU64,
}

/// The overload-safe inference server.
///
/// A fixed set of worker threads consumes a bounded request queue in
/// batches and evaluates each request through one shared [`DenseNet`]
/// (whose memoized kernel-spectrum cache is read-only after
/// [`DenseNet::warmup`], so workers never contend on it). The four
/// robustness layers, outermost first:
///
/// 1. **admission control** — [`Server::submit`] polls the queue's
///    lock-free depth gauge and sheds with [`Rejected::Overloaded`]
///    at the watermark;
/// 2. **graceful degradation** — past `degrade_watermark`, workers
///    halve batch and block sizes before anything is shed;
/// 3. **deadlines** — checked cooperatively between output blocks;
///    expiry cancels mid-volume and returns every pooled lease;
/// 4. **panic containment** — each request is evaluated under
///    `catch_unwind`; a panic poisons only that response.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts a server over `net` (which must be single-input,
    /// single-output and shift-invariant — see
    /// [`DenseNet::forward_blocked`]). Warm the net first so the
    /// spectrum cache is read-only while workers share it.
    pub fn start(net: Arc<DenseNet>, cfg: ServeConfig) -> Server {
        assert!(cfg.max_batch > 0, "max_batch must be positive");
        let watermark = if cfg.admission_watermark == 0 {
            cfg.queue_capacity
        } else {
            cfg.admission_watermark.min(cfg.queue_capacity)
        };
        let queue = BoundedQueue::new(cfg.queue_capacity);
        let shared = Arc::new(Shared {
            net,
            watermark,
            queue,
            counters: Counters::default(),
            next_id: AtomicU64::new(0),
            cfg,
        });
        let workers = (0..shared.cfg.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("znn-serve-{i}"))
                    .spawn(move || Self::worker_loop(&shared))
                    .expect("spawn serve worker")
            })
            .collect();
        Server { shared, workers }
    }

    /// The effective admission watermark.
    pub fn watermark(&self) -> usize {
        self.shared.watermark
    }

    /// Current request-queue depth (the admission-control signal).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// Submits a volume for dense inference with an optional latency
    /// budget. Returns a [`Ticket`] if admitted; rejections are
    /// immediate and typed.
    pub fn submit(&self, image: Image, budget: Option<Duration>) -> Result<Ticket, Rejected> {
        let shared = &self.shared;
        shared.counters.submitted.fetch_add(1, Ordering::Relaxed);
        let id = shared.next_id.fetch_add(1, Ordering::Relaxed) + 1;

        if shared.net.output_shape_for(image.shape()).is_none() {
            shared.counters.invalid.fetch_add(1, Ordering::Relaxed);
            return Err(Rejected::Invalid {
                shape: image.shape(),
                fov: shared.net.fov(),
            });
        }
        // fault injection: a refused lease on the request path is shed
        // gracefully (typed), unlike training's LeaseFail which unwinds
        if let Some(faults) = &shared.cfg.faults {
            if faults.take(FaultKind::RejectLease, id) {
                shared.counters.lease_refused.fetch_add(1, Ordering::Relaxed);
                return Err(Rejected::LeaseRefused);
            }
        }
        // admission control: poll the lock-free depth gauge before
        // touching the queue lock
        let depth = shared.queue.depth();
        if depth >= shared.watermark {
            shared.counters.shed_overload.fetch_add(1, Ordering::Relaxed);
            return Err(Rejected::Overloaded {
                queue_depth: depth,
                watermark: shared.watermark,
            });
        }
        let inner = Arc::new(TicketInner {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        });
        let job = Job {
            id,
            image,
            deadline: budget.map(|b| Instant::now() + b),
            ticket: Arc::clone(&inner),
        };
        match shared.queue.try_push(job) {
            Ok(()) => {
                shared.counters.admitted.fetch_add(1, Ordering::Relaxed);
                Ok(Ticket { inner, id })
            }
            Err(PushError::Full(_)) => {
                // raced past the gauge into a full queue: still a
                // typed shed, never a block
                shared.counters.shed_overload.fetch_add(1, Ordering::Relaxed);
                Err(Rejected::Overloaded {
                    queue_depth: shared.queue.capacity(),
                    watermark: shared.watermark,
                })
            }
            Err(PushError::Closed(_)) => {
                shared.counters.shutdown_rejected.fetch_add(1, Ordering::Relaxed);
                Err(Rejected::ShuttingDown)
            }
        }
    }

    /// A snapshot of the serving counters plus the live queue depth.
    pub fn stats(&self) -> ServeStats {
        self.shared
            .counters
            .snapshot(self.shared.queue.depth(), self.shared.watermark)
    }

    /// A human-readable stats report in the style of the trainer's
    /// `--pool-report`, including the pooled-allocator state the
    /// server leases from.
    pub fn report(&self) -> String {
        let mut out = self.stats().report();
        if let Some(pools) = self.shared.net.pools() {
            let s = pools.stats();
            out.push_str(&format!(
                "pool: resident {} B, in use {} B, hit rate {:.3}\n",
                pools.resident_bytes(),
                s.bytes_in_use(),
                pools.hit_rate(),
            ));
        }
        out
    }

    /// Deterministically drains the queue on the calling thread using
    /// the same batch-assembly path the workers run. Returns the
    /// number of requests processed. Intended for `workers: 0` servers
    /// in tests and single-threaded drivers.
    pub fn run_pending(&self) -> usize {
        let mut processed = 0;
        while let Some(first) = self.shared.queue.try_pop() {
            processed += Self::run_batch(&self.shared, first);
        }
        processed
    }

    /// Closes the queue, joins the workers, fails whatever is still
    /// queued with [`Rejected::ShuttingDown`], and returns the final
    /// stats.
    pub fn shutdown(mut self) -> ServeStats {
        self.shutdown_impl();
        self.stats()
    }

    fn shutdown_impl(&mut self) {
        self.shared.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        for job in self.shared.queue.drain() {
            self.shared
                .counters
                .shutdown_rejected
                .fetch_add(1, Ordering::Relaxed);
            job.ticket.fulfill(Err(Rejected::ShuttingDown));
        }
    }

    fn worker_loop(shared: &Arc<Shared>) {
        while let Some(first) = shared.queue.pop() {
            Self::run_batch(shared, first);
        }
    }

    /// Assembles one batch starting from `first` and processes it.
    /// Degradation is decided per batch from the live queue depth.
    fn run_batch(shared: &Arc<Shared>, first: Job) -> usize {
        let degraded = shared
            .cfg
            .degrade_watermark
            .is_some_and(|w| shared.queue.depth() >= w);
        let (batch_cap, block) = if degraded {
            shared.counters.degraded_batches.fetch_add(1, Ordering::Relaxed);
            (
                (shared.cfg.max_batch / 2).max(1),
                Vec3::max(&Vec3::one(), half(shared.cfg.block)),
            )
        } else {
            (shared.cfg.max_batch, shared.cfg.block)
        };
        let mut batch = vec![first];
        while batch.len() < batch_cap {
            match shared.queue.try_pop() {
                Some(job) => batch.push(job),
                None => break,
            }
        }
        let n = batch.len();
        for job in batch {
            Self::process(shared, job, block);
        }
        n
    }

    /// Evaluates one request with deadline checkpoints and panic
    /// containment. Every pooled lease taken for the request is
    /// scoped inside this frame, so both the cancellation and the
    /// unwinding paths return all bytes by RAII.
    fn process(shared: &Arc<Shared>, job: Job, block: Vec3) {
        let slow = shared.cfg.faults.as_ref().and_then(|f| {
            f.take(FaultKind::SlowTask, job.id)
                .then_some(shared.cfg.slow_task)
        });
        let panic_armed = shared
            .cfg
            .faults
            .as_ref()
            .is_some_and(|f| f.take(FaultKind::TaskPanic, job.id));
        let net = Arc::clone(&shared.net);
        let deadline = job.deadline;
        let image = &job.image;
        let result = catch_unwind(AssertUnwindSafe(|| {
            if panic_armed {
                panic!("fault-injection: request {} panicked mid-batch", job.id);
            }
            let mut stalled = false;
            net.forward_blocked(image, block, &mut |ev| {
                // injected stall lands after the first block so an
                // expiring deadline is observed mid-volume
                if let Some(d) = slow {
                    if ev.index >= 1 && !stalled {
                        stalled = true;
                        std::thread::sleep(d);
                    }
                }
                match deadline {
                    Some(t) if Instant::now() >= t => std::ops::ControlFlow::Break(()),
                    _ => std::ops::ControlFlow::Continue(()),
                }
            })
        }));
        let response = match result {
            Ok(Ok(out)) => {
                shared.counters.completed.fetch_add(1, Ordering::Relaxed);
                Ok(out)
            }
            Ok(Err(c)) => {
                shared.counters.deadline_missed.fetch_add(1, Ordering::Relaxed);
                Err(Rejected::DeadlineExceeded {
                    blocks_done: c.blocks_done,
                    blocks_total: c.blocks_total,
                })
            }
            Err(payload) => {
                shared.counters.panicked.fetch_add(1, Ordering::Relaxed);
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                Err(Rejected::Panicked { message })
            }
        };
        job.ticket.fulfill(response);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

/// Elementwise halving, used by the degradation ladder.
fn half(v: Vec3) -> Vec3 {
    Vec3([v.0[0] / 2, v.0[1] / 2, v.0[2] / 2])
}
