//! Deterministic tests for the server's robustness boundaries:
//! exact-watermark shedding, mid-volume deadline expiry with zero
//! leaked pool bytes, panicking-request isolation, the degradation
//! ladder, shutdown semantics, and a property test over batch
//! assembly with mixed request shapes.
//!
//! All deterministic tests run a `workers: 0` server and drive it
//! with [`Server::run_pending`], which uses the same batch-assembly
//! path as the worker threads — orderings are exact, never timing-
//! dependent.

use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;
use znn_alloc::PoolSet;
use znn_core::{ConvPolicy, DenseConfig, DenseNet};
use znn_fault::{FaultKind, FaultPlan};
use znn_graph::{Graph, NetBuilder};
use znn_ops::Transfer;
use znn_serve::{Rejected, ServeConfig, Server};
use znn_tensor::{ops, Vec3};

/// A small dense (max-filtering) recognition net, fov 1×8×8.
fn filtering_net() -> Graph {
    NetBuilder::new("filter", 1)
        .conv(2, Vec3::flat(3, 3))
        .transfer(Transfer::Tanh)
        .max_filter(Vec3::flat(2, 2))
        .conv(1, Vec3::flat(3, 3))
        .transfer(Transfer::Tanh)
        .build()
        .unwrap()
        .0
}

fn dense_net(pools: Arc<PoolSet>) -> Arc<DenseNet> {
    let cfg = DenseConfig {
        conv: ConvPolicy::ForceDirect,
        pools: Some(pools),
        ..DenseConfig::default()
    };
    Arc::new(DenseNet::new(filtering_net(), 7, cfg).unwrap())
}

#[test]
fn shedding_starts_exactly_at_the_watermark() {
    let net = dense_net(PoolSet::new());
    let server = Server::start(
        net,
        ServeConfig {
            workers: 0,
            queue_capacity: 4,
            admission_watermark: 3,
            ..ServeConfig::default()
        },
    );
    let shape = Vec3::flat(12, 12);
    let mut tickets = Vec::new();
    for _ in 0..3 {
        tickets.push(server.submit(ops::random(shape, 1), None).unwrap());
    }
    // depth == watermark: the next submit is shed, typed
    let err = server.submit(ops::random(shape, 2), None).unwrap_err();
    assert_eq!(
        err,
        Rejected::Overloaded {
            queue_depth: 3,
            watermark: 3
        }
    );
    assert_eq!(server.queue_depth(), 3);
    assert_eq!(server.run_pending(), 3);
    for t in tickets {
        assert!(t.wait().is_ok());
    }
    // queue drained: admission is open again
    let t = server.submit(ops::random(shape, 3), None).unwrap();
    assert_eq!(server.run_pending(), 1);
    assert!(t.wait().is_ok());

    let stats = server.stats();
    assert_eq!(stats.submitted, 5);
    assert_eq!(stats.admitted, 4);
    assert_eq!(stats.completed, 4);
    assert_eq!(stats.shed_overload, 1);
    assert!(stats.shed_rate() > 0.19 && stats.shed_rate() < 0.21);
}

#[test]
fn deadline_expires_mid_volume_and_returns_every_lease() {
    let pools = PoolSet::new();
    let faults = Arc::new(FaultPlan::new().arm(FaultKind::SlowTask, 1)); // stall request 1 after block 0
    let net = dense_net(Arc::clone(&pools));
    let server = Server::start(
        Arc::clone(&net),
        ServeConfig {
            workers: 0,
            block: Vec3::flat(3, 3), // many output blocks per volume
            faults: Some(faults),
            slow_task: Duration::from_millis(60),
            ..ServeConfig::default()
        },
    );
    let ticket = server
        .submit(
            ops::random(Vec3::flat(20, 20), 1),
            Some(Duration::from_millis(30)),
        )
        .unwrap();
    assert_eq!(server.run_pending(), 1);
    match ticket.wait().unwrap_err() {
        Rejected::DeadlineExceeded {
            blocks_done,
            blocks_total,
        } => {
            assert!(blocks_done >= 1, "block 0 completes before the stall");
            assert!(blocks_done < blocks_total, "expired mid-volume");
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    let stats = server.stats();
    assert_eq!(stats.deadline_missed, 1);
    assert_eq!(stats.completed, 0);
    // the cancelled evaluation returned every pooled lease
    assert_eq!(pools.stats().bytes_in_use(), 0);

    // the server keeps serving after the miss
    let t = server.submit(ops::random(Vec3::flat(12, 12), 2), None).unwrap();
    server.run_pending();
    assert!(t.wait().is_ok());
}

#[test]
fn panicking_request_poisons_only_its_own_response() {
    let pools = PoolSet::new();
    let faults = Arc::new(FaultPlan::new().arm(FaultKind::TaskPanic, 2)); // request 2 panics mid-batch
    let net = dense_net(Arc::clone(&pools));
    let server = Server::start(
        Arc::clone(&net),
        ServeConfig {
            workers: 0,
            max_batch: 4, // all three requests land in one batch
            faults: Some(faults),
            ..ServeConfig::default()
        },
    );
    let shape = Vec3::flat(14, 14);
    let expect_shape = net.output_shape_for(shape).unwrap();
    let tickets: Vec<_> = (0..3)
        .map(|i| server.submit(ops::random(shape, i), None).unwrap())
        .collect();
    assert_eq!(server.run_pending(), 3);

    let mut results = tickets.into_iter().map(|t| t.wait());
    let first = results.next().unwrap().unwrap();
    assert_eq!(first.shape(), expect_shape);
    match results.next().unwrap().unwrap_err() {
        Rejected::Panicked { message } => {
            assert!(message.contains("fault-injection"), "got: {message}")
        }
        other => panic!("expected Panicked, got {other:?}"),
    }
    let third = results.next().unwrap().unwrap();
    assert_eq!(third.shape(), expect_shape);

    let stats = server.stats();
    assert_eq!(stats.panicked, 1);
    assert_eq!(stats.completed, 2);
    // the unwound request leaked nothing (the completed responses are
    // leases too — return them before counting)
    drop(first);
    drop(third);
    assert_eq!(pools.stats().bytes_in_use(), 0);
}

#[test]
fn reject_lease_fault_is_shed_typed_not_unwound() {
    let faults = Arc::new(FaultPlan::new().arm(FaultKind::RejectLease, 1));
    let net = dense_net(PoolSet::new());
    let server = Server::start(
        net,
        ServeConfig {
            workers: 0,
            faults: Some(faults),
            ..ServeConfig::default()
        },
    );
    let shape = Vec3::flat(12, 12);
    assert_eq!(
        server.submit(ops::random(shape, 1), None).unwrap_err(),
        Rejected::LeaseRefused
    );
    // only request 1 was armed; request 2 sails through
    let t = server.submit(ops::random(shape, 2), None).unwrap();
    server.run_pending();
    assert!(t.wait().is_ok());
    assert_eq!(server.stats().lease_refused, 1);
}

#[test]
fn degradation_halves_batches_before_shedding() {
    let net = dense_net(PoolSet::new());
    let whole = {
        let img = ops::random(Vec3::flat(16, 16), 9);
        (img.clone(), net.forward(&img))
    };
    let server = Server::start(
        Arc::clone(&net),
        ServeConfig {
            workers: 0,
            queue_capacity: 8,
            max_batch: 4,
            block: Vec3::flat(8, 8),
            degrade_watermark: Some(2),
            ..ServeConfig::default()
        },
    );
    let mut tickets = Vec::new();
    for i in 0..6 {
        tickets.push(server.submit(ops::random(Vec3::flat(16, 16), 10 + i), None).unwrap());
    }
    let degraded_submit = server.submit(whole.0.clone(), None).unwrap();
    assert_eq!(server.run_pending(), 7);
    for t in tickets {
        assert!(t.wait().is_ok());
    }
    // degraded blocks still compute the exact same dense function
    assert_eq!(degraded_submit.wait().unwrap().max_abs_diff(&whole.1), 0.0);
    let stats = server.stats();
    assert!(
        stats.degraded_batches >= 1,
        "queue depth 6 >= watermark 2 must degrade: {stats:?}"
    );
    assert_eq!(stats.shed_overload, 0, "degradation happens before shedding");
}

#[test]
fn shutdown_fails_pending_requests_typed() {
    let net = dense_net(PoolSet::new());
    let server = Server::start(
        net,
        ServeConfig {
            workers: 0,
            ..ServeConfig::default()
        },
    );
    let shape = Vec3::flat(12, 12);
    let t1 = server.submit(ops::random(shape, 1), None).unwrap();
    let t2 = server.submit(ops::random(shape, 2), None).unwrap();
    let stats = server.shutdown();
    assert_eq!(stats.shutdown_rejected, 2);
    assert_eq!(t1.wait().unwrap_err(), Rejected::ShuttingDown);
    assert_eq!(t2.wait().unwrap_err(), Rejected::ShuttingDown);
}

#[test]
fn threaded_server_survives_mixed_faults_with_zero_leak() {
    // a real worker pool under a recurring fault mix: every 3rd
    // request stalls, every 5th panics — the server answers everything
    // and leaks nothing
    let pools = PoolSet::new();
    let faults = Arc::new(
        FaultPlan::new()
            .every_n(FaultKind::SlowTask, 3, 3)
            .every_n(FaultKind::TaskPanic, 5, 5),
    );
    let net = dense_net(Arc::clone(&pools));
    net.warmup(Vec3::flat(16, 16));
    let server = Server::start(
        Arc::clone(&net),
        ServeConfig {
            workers: 2,
            queue_capacity: 32,
            faults: Some(faults),
            slow_task: Duration::from_millis(2),
            block: Vec3::flat(6, 6),
            ..ServeConfig::default()
        },
    );
    let mut completed = 0;
    let mut panicked = 0;
    for i in 0..20 {
        let t = server
            .submit(ops::random(Vec3::flat(16, 16), i), None)
            .unwrap();
        match t.wait() {
            Ok(_) => completed += 1,
            Err(Rejected::Panicked { .. }) => panicked += 1,
            Err(other) => panic!("unexpected rejection: {other:?}"),
        }
    }
    assert_eq!(panicked, 4, "requests 5, 10, 15, 20 panic");
    assert_eq!(completed, 16);
    let stats = server.shutdown();
    assert_eq!(stats.completed, 16);
    assert_eq!(stats.panicked, 4);
    drop(net);
    assert_eq!(pools.stats().bytes_in_use(), 0, "zero pooled bytes leaked");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Batch assembly over mixed request shapes: every admitted
    /// request is answered with the correct dense output shape, and
    /// undersized volumes are refused typed at admission — nothing is
    /// ever lost or misrouted, for any batch/capacity configuration.
    #[test]
    fn batch_assembly_answers_every_mixed_shape_request(
        shapes in proptest::collection::vec((1usize..28, 1usize..28), 1..12),
        max_batch in 1usize..6,
        seed in any::<u64>(),
    ) {
        let net = dense_net(PoolSet::new());
        let fov = net.fov();
        let server = Server::start(
            Arc::clone(&net),
            ServeConfig {
                workers: 0,
                queue_capacity: 16,
                max_batch,
                block: Vec3::flat(5, 7),
                ..ServeConfig::default()
            },
        );
        let mut expected = Vec::new();
        for (i, &(y, x)) in shapes.iter().enumerate() {
            let shape = Vec3::flat(y, x);
            let img = ops::random(shape, seed.wrapping_add(i as u64));
            match server.submit(img, None) {
                Ok(t) => expected.push((t, net.output_shape_for(shape))),
                Err(Rejected::Invalid { shape: s, fov: f }) => {
                    prop_assert_eq!(s, shape);
                    prop_assert_eq!(f, fov);
                    prop_assert!(net.output_shape_for(shape).is_none());
                }
                Err(other) => panic!("unexpected rejection: {other:?}"),
            }
        }
        server.run_pending();
        let stats = server.stats();
        prop_assert_eq!(stats.completed as usize, expected.len());
        for (t, want) in expected {
            let out = t.wait().unwrap();
            prop_assert_eq!(Some(out.shape()), want);
        }
    }
}
