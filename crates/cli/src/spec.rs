//! The network-spec parser.

use std::collections::HashMap;
use std::fmt;
use znn_graph::{Graph, NetBuilder};
use znn_ops::Transfer;
use znn_tensor::Vec3;

/// Parse errors with line numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spec line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SpecError {}

fn err(line: usize, message: impl Into<String>) -> SpecError {
    SpecError {
        line,
        message: message.into(),
    }
}

/// Parses `k`, `k,k` or `k,k,k` into a [`Vec3`]; single values are
/// isotropic, pairs are 2D (`1,a,b`).
fn parse_dims(line: usize, s: &str) -> Result<Vec3, SpecError> {
    let parts: Vec<usize> = s
        .split(',')
        .map(|p| {
            p.trim()
                .parse::<usize>()
                .map_err(|_| err(line, format!("bad integer '{p}'")))
        })
        .collect::<Result<_, _>>()?;
    match parts.as_slice() {
        [k] => Ok(Vec3::cube(*k)),
        [a, b] => Ok(Vec3::flat(*a, *b)),
        [a, b, c] => Ok(Vec3::new(*a, *b, *c)),
        _ => Err(err(line, format!("expected 1-3 dims, got {}", parts.len()))),
    }
}

fn parse_transfer(line: usize, s: &str) -> Result<Transfer, SpecError> {
    match s {
        "linear" => Ok(Transfer::Linear),
        "logistic" | "sigmoid" => Ok(Transfer::Logistic),
        "tanh" => Ok(Transfer::Tanh),
        "relu" => Ok(Transfer::Relu),
        other => {
            if let Some(alpha) = other.strip_prefix("leaky:") {
                let a = alpha
                    .parse::<f32>()
                    .map_err(|_| err(line, format!("bad leaky slope '{alpha}'")))?;
                Ok(Transfer::LeakyRelu(a))
            } else {
                Err(err(
                    line,
                    format!("unknown transfer '{other}' (linear|logistic|tanh|relu|leaky:a)"),
                ))
            }
        }
    }
}

fn kv_map(line: usize, tokens: &[&str]) -> Result<HashMap<String, String>, SpecError> {
    let mut map = HashMap::new();
    for t in tokens {
        let (k, v) = t
            .split_once('=')
            .ok_or_else(|| err(line, format!("expected key=value, got '{t}'")))?;
        if map.insert(k.to_string(), v.to_string()).is_some() {
            return Err(err(line, format!("duplicate key '{k}'")));
        }
    }
    Ok(map)
}

fn get<'m>(
    line: usize,
    map: &'m HashMap<String, String>,
    key: &str,
) -> Result<&'m str, SpecError> {
    map.get(key)
        .map(|s| s.as_str())
        .ok_or_else(|| err(line, format!("missing '{key}='")))
}

/// Parses a network spec into a validated [`Graph`].
pub fn parse_spec(text: &str) -> Result<Graph, SpecError> {
    let mut builder: Option<NetBuilder> = None;
    let mut saw_layer = false;
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let (directive, rest) = tokens.split_first().expect("nonempty line");
        let map = kv_map(line_no, rest)?;
        match *directive {
            "input" => {
                if builder.is_some() {
                    return Err(err(line_no, "'input' must be the first directive"));
                }
                let width: usize = get(line_no, &map, "width")?
                    .parse()
                    .map_err(|_| err(line_no, "bad width"))?;
                if width == 0 {
                    return Err(err(line_no, "width must be >= 1"));
                }
                builder = Some(NetBuilder::new("spec", width));
            }
            _ if builder.is_none() => {
                return Err(err(line_no, "spec must start with 'input width=...'"));
            }
            "conv" => {
                let width: usize = get(line_no, &map, "width")?
                    .parse()
                    .map_err(|_| err(line_no, "bad width"))?;
                let kernel = parse_dims(line_no, get(line_no, &map, "kernel")?)?;
                let mut b = builder.take().expect("checked above");
                if let Some(s) = map.get("sparsity") {
                    b = b.set_sparsity(parse_dims(line_no, s)?);
                }
                builder = Some(b.conv(width, kernel));
                saw_layer = true;
            }
            "transfer" => {
                let f = parse_transfer(line_no, get(line_no, &map, "fn")?)?;
                builder = Some(builder.take().expect("checked above").transfer(f));
                saw_layer = true;
            }
            "maxpool" => {
                let window = parse_dims(line_no, get(line_no, &map, "window")?)?;
                builder = Some(builder.take().expect("checked above").max_pool(window));
                saw_layer = true;
            }
            "maxfilter" => {
                let window = parse_dims(line_no, get(line_no, &map, "window")?)?;
                let b = builder.take().expect("checked above");
                builder = Some(if let Some(d) = map.get("dilation") {
                    b.max_filter_sparse(window, parse_dims(line_no, d)?)
                } else {
                    b.max_filter(window)
                });
                saw_layer = true;
            }
            other => {
                return Err(err(
                    line_no,
                    format!(
                        "unknown directive '{other}' \
                         (input|conv|transfer|maxpool|maxfilter)"
                    ),
                ));
            }
        }
    }
    let builder = builder.ok_or_else(|| err(0, "empty spec"))?;
    if !saw_layer {
        return Err(err(0, "spec declares no layers"));
    }
    builder
        .build()
        .map(|(g, _)| g)
        .map_err(|e| err(0, format!("invalid network: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use znn_graph::EdgeOp;

    const GOOD: &str = "
# 3D boundary detector
input width=1
conv width=4 kernel=3,3,3
transfer fn=relu
maxfilter window=2,2,2
conv width=1 kernel=3
transfer fn=logistic
";

    #[test]
    fn parses_a_valid_spec() {
        let g = parse_spec(GOOD).unwrap();
        assert!(g.validate().is_ok());
        // conv(1->4) + transfer(4) + filter(4) + conv(4->1) + transfer(1)
        assert_eq!(g.edge_count(), 4 + 4 + 4 + 4 + 1);
        // the max-filter bumped sparsity for the second conv layer
        let sparse_convs = g
            .edges()
            .iter()
            .filter(|e| matches!(e.op, EdgeOp::Conv { sparsity, .. } if sparsity == Vec3::cube(2)))
            .count();
        assert_eq!(sparse_convs, 4);
    }

    #[test]
    fn isotropic_and_2d_dims() {
        assert_eq!(parse_dims(1, "5").unwrap(), Vec3::cube(5));
        assert_eq!(parse_dims(1, "7,9").unwrap(), Vec3::flat(7, 9));
        assert_eq!(parse_dims(1, "1,2,3").unwrap(), Vec3::new(1, 2, 3));
        assert!(parse_dims(1, "1,2,3,4").is_err());
        assert!(parse_dims(1, "x").is_err());
    }

    #[test]
    fn transfer_names() {
        assert_eq!(parse_transfer(1, "relu").unwrap(), Transfer::Relu);
        assert_eq!(parse_transfer(1, "sigmoid").unwrap(), Transfer::Logistic);
        assert_eq!(
            parse_transfer(1, "leaky:0.2").unwrap(),
            Transfer::LeakyRelu(0.2)
        );
        assert!(parse_transfer(1, "swish").is_err());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_spec("input width=1\nconv width=2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("kernel"));
    }

    #[test]
    fn input_must_come_first() {
        let e = parse_spec("conv width=2 kernel=3\n").unwrap_err();
        assert!(e.message.contains("input"));
        let e2 = parse_spec("input width=1\ninput width=2\n").unwrap_err();
        assert!(e2.message.contains("first"));
    }

    #[test]
    fn rejects_unknown_directives_and_bad_kv() {
        assert!(parse_spec("input width=1\npool size=2\n").is_err());
        assert!(parse_spec("input width=1\nconv width 2\n").is_err());
        assert!(parse_spec("input width=0\n").is_err());
        assert!(parse_spec("").is_err());
        assert!(parse_spec("input width=1\n").is_err()); // no layers
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let g = parse_spec("  # leading comment\n\ninput width=1 # trailing\nconv width=1 kernel=2\n").unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn explicit_sparsity_and_filter_dilation() {
        let g = parse_spec(
            "input width=1\nconv width=1 kernel=3 sparsity=2\nmaxfilter window=2 dilation=1\n",
        )
        .unwrap();
        let has_sparse = g
            .edges()
            .iter()
            .any(|e| matches!(e.op, EdgeOp::Conv { sparsity, .. } if sparsity == Vec3::cube(2)));
        assert!(has_sparse);
    }
}
