//! `znn-train` — train a network described by a spec file on synthetic
//! volumes, from the command line.
//!
//! ```sh
//! znn-train --spec net.znn --out 8 --rounds 50 --lr 0.01 \
//!           [--workers N] [--fft-threads N] [--plan auto|off] \
//!           [--fft|--direct] \
//!           [--no-memoize] [--no-pool] [--stealing] [--pool-report] \
//!           [--checkpoint-dir D] [--checkpoint-every N] [--resume]
//! ```
//!
//! `--fft-threads` caps intra-transform FFT parallelism; by default
//! transforms share the scheduler's worker budget (idle workers donate
//! themselves to FFT line chunks).
//!
//! `--plan auto` enables the `znn-plan` cost-model planner: per conv
//! edge it picks direct vs FFT, the pad shape, and the FFT fan-out by
//! pricing the theory FLOP model through a detected machine model,
//! then calibrates that model online from measured round times
//! (re-plans move only the bit-safe fan-out). The chosen plan and the
//! calibration summary are printed. A plan overrides `--fft`/`--direct`.
//!
//! `--no-pool` disables the §VII-C pooled allocator (hot-path buffers
//! fall back to plain `Vec`s); by default every image/spectrum buffer
//! leases from the process-wide recycling pool, whose hit rate and
//! resident footprint are reported when training ends. `--pool-report`
//! additionally dumps per-size-class occupancy and hit rates at exit.
//!
//! `--checkpoint-dir` enables durable checkpoints (atomic write +
//! CRC-checked, every `--checkpoint-every` rounds, default 25) and runs
//! training under the recoverable driver: divergence and non-finite
//! sentinels roll back to the last good state and retry with
//! learning-rate backoff. `--resume` restarts from the newest valid
//! snapshot in the directory, bit-identically.
//!
//! With no `--spec`, a built-in demo spec is used.

use std::path::PathBuf;
use std::process::ExitCode;
use znn_cli::parse_spec;
use znn_core::{
    BlobsDataset, CheckpointConfig, ConvPolicy, LrSchedule, PlanPolicy, TrainConfig, TrainOutcome,
    Trainer, Znn,
};
use znn_ops::Loss;
use znn_tensor::Vec3;

const DEMO_SPEC: &str = "
# built-in demo: small 3D boundary detector
input width=1
conv width=4 kernel=3,3,3
transfer fn=relu
conv width=4 kernel=3,3,3
transfer fn=relu
conv width=1 kernel=3,3,3
transfer fn=logistic
";

struct Args {
    spec: Option<String>,
    out: usize,
    rounds: u64,
    lr: f32,
    workers: Option<usize>,
    fft_threads: Option<usize>,
    plan: bool,
    conv: ConvPolicy,
    memoize: bool,
    stealing: bool,
    pool: bool,
    pool_report: bool,
    checkpoint_dir: Option<PathBuf>,
    checkpoint_every: Option<u64>,
    resume: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: znn-train [--spec FILE] [--out N] [--rounds N] [--lr F]\n\
         \t[--workers N] [--fft-threads N] [--plan auto|off] [--fft|--direct]\n\
         \t[--no-memoize] [--no-pool] [--stealing] [--pool-report]\n\
         \t[--checkpoint-dir D] [--checkpoint-every N] [--resume]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        spec: None,
        out: 6,
        rounds: 30,
        lr: 0.01,
        workers: None,
        fft_threads: None,
        plan: false,
        conv: ConvPolicy::Autotune,
        memoize: true,
        stealing: false,
        pool: true,
        pool_report: false,
        checkpoint_dir: None,
        checkpoint_every: None,
        resume: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--spec" => args.spec = Some(val()),
            "--out" => args.out = val().parse().unwrap_or_else(|_| usage()),
            "--rounds" => args.rounds = val().parse().unwrap_or_else(|_| usage()),
            "--lr" => args.lr = val().parse().unwrap_or_else(|_| usage()),
            "--workers" => args.workers = Some(val().parse().unwrap_or_else(|_| usage())),
            "--fft-threads" => {
                args.fft_threads = Some(val().parse().unwrap_or_else(|_| usage()))
            }
            "--plan" => match val().as_str() {
                "auto" => args.plan = true,
                "off" => args.plan = false,
                _ => usage(),
            },
            "--fft" => args.conv = ConvPolicy::ForceFft,
            "--direct" => args.conv = ConvPolicy::ForceDirect,
            "--no-memoize" => args.memoize = false,
            "--no-pool" => args.pool = false,
            "--stealing" => args.stealing = true,
            "--pool-report" => args.pool_report = true,
            "--checkpoint-dir" => args.checkpoint_dir = Some(PathBuf::from(val())),
            "--checkpoint-every" => {
                args.checkpoint_every = Some(val().parse().unwrap_or_else(|_| usage()))
            }
            "--resume" => args.resume = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if args.checkpoint_dir.is_none() && (args.checkpoint_every.is_some() || args.resume) {
        eprintln!("--checkpoint-every / --resume require --checkpoint-dir");
        usage();
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let text = match &args.spec {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => DEMO_SPEC.to_string(),
    };
    let graph = match parse_spec(&text) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "network: {} nodes, {} edges, {} parameters",
        graph.node_count(),
        graph.edge_count(),
        graph.parameter_count()
    );

    let checkpoint = args.checkpoint_dir.clone().map(|dir| {
        let mut cc = CheckpointConfig::new(dir);
        if let Some(every) = args.checkpoint_every {
            cc.every = every;
        }
        cc
    });
    let planner = args.plan.then(|| {
        let p = std::sync::Arc::new(znn_plan::Planner::new(znn_plan::PlanConfig::host()));
        let m = &p.config().machine;
        println!(
            "planner: machine prior {} ({} cores, {:.1} GFLOP/s, {:.1} GB/s)",
            m.name, m.cores, m.gflops, m.bandwidth_gbs
        );
        p
    });
    let cfg = TrainConfig {
        workers: args.workers.unwrap_or_else(|| {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        }),
        fft_threads: args.fft_threads,
        plan: planner
            .as_ref()
            .map(|p| PlanPolicy::Auto(std::sync::Arc::clone(p))),
        learning_rate: args.lr,
        conv: args.conv,
        memoize_fft: args.memoize,
        work_stealing: args.stealing,
        loss: Loss::Mse,
        pools: args.pool.then(znn_alloc::PoolSet::global),
        checkpoint,
        ..Default::default()
    };
    let out_shape = Vec3::cube(args.out);
    let znn = match Znn::new(graph, out_shape, cfg) {
        Ok(z) => z,
        Err(e) => {
            eprintln!("cannot size network: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("input {} -> output {out_shape}", znn.input_shape());
    if let Some(plan) = znn.net_plan() {
        let (direct, fft) = plan.edges.iter().flatten().fold((0, 0), |(d, f), ep| {
            match ep.method {
                znn_ops::ConvMethod::Direct => (d + 1, f),
                znn_ops::ConvMethod::Fft => (d, f + 1),
            }
        });
        println!(
            "plan: {direct} direct / {fft} FFT conv edges, fft_threads {}, \
             predicted round {:.0}µs",
            plan.fft_threads, plan.predicted_round_us
        );
    }

    let data = BlobsDataset {
        input_shape: znn.input_shape(),
        output_shape: out_shape,
        blobs: 3,
        noise: 0.05,
        seed: 42,
    };
    let mut trainer = Trainer::new(&znn, data).with_schedule(LrSchedule::Constant);
    if args.resume {
        match trainer.resume() {
            Ok(Some(round)) => println!("resumed from checkpoint at round {round}"),
            Ok(None) => println!("no valid checkpoint found; starting fresh"),
            Err(e) => {
                eprintln!("cannot resume: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let report_every = (args.rounds / 6).max(1);
    let report = |p: znn_core::Progress| {
        println!(
            "rounds {:>4}+: mean loss {:.4} (lr x{:.2})",
            p.round, p.mean_loss, p.lr_factor
        );
    };
    if args.checkpoint_dir.is_some() {
        match trainer.run_recoverable(args.rounds, report_every, report) {
            Ok(TrainOutcome::Completed { final_loss }) => {
                println!("training completed, final loss {final_loss:.4}");
            }
            Ok(TrainOutcome::Interrupted { at_round }) => {
                println!("training interrupted at round {at_round}");
            }
            Err(e) => {
                eprintln!("training failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        trainer.run(args.rounds, report_every, report);
    }
    let stats = znn.stats();
    println!(
        "done: {} tasks executed; FORCE done/inline/delegated = {}/{}/{}",
        stats.tasks_executed,
        stats.force_already_done,
        stats.force_ran_inline,
        stats.force_delegated
    );
    if args.pool {
        println!(
            "alloc: {:.1}% pool hit rate, {} B resident (flat after warmup), {} B churn absorbed",
            stats.alloc_hit_rate() * 100.0,
            stats.alloc_resident_bytes,
            stats.alloc_leased_bytes
        );
    }
    if let Some(planner) = &planner {
        let cal = planner.calibration();
        if let Some(last) = cal.rounds.last() {
            println!(
                "planner calibration: scale {:.2} after {} rounds ({} re-plans), \
                 last round predicted {:.0}µs / measured {:.0}µs",
                cal.scale,
                cal.rounds.len(),
                cal.replans,
                last.predicted_us,
                last.measured_us
            );
        }
    }
    if args.pool_report {
        if args.pool {
            print_pool_report(&znn_alloc::PoolSet::global());
        } else {
            println!("pool report: pooling disabled (--no-pool), nothing to report");
        }
    }
    ExitCode::SUCCESS
}

/// Dumps per-size-class occupancy/hit-rate rows of the shared chunk
/// pool (`--pool-report`).
fn print_pool_report(pools: &znn_alloc::PoolSet) {
    println!("pool report (per size class, f32 units):");
    println!("  class  chunk_len     parked       hits     misses  hit-rate");
    for row in pools.class_report() {
        println!(
            "  {:>5}  {:>9}  {:>9}  {:>9}  {:>9}  {:>7.1}%",
            row.class,
            row.chunk_len,
            row.parked,
            row.hits,
            row.misses,
            row.hit_rate() * 100.0
        );
    }
}
