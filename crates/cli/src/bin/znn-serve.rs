//! `znn-serve` — serve dense-output inference for a spec-file network
//! from the command line, with the overload-safety knobs exposed.
//!
//! ```sh
//! znn-serve [--spec net.znn] [--in Z,Y,X] [--requests N] [--rate R]
//!           [--workers N] [--queue N] [--watermark N] [--batch N]
//!           [--block Z,Y,X] [--degrade N] [--deadline-ms N]
//!           [--pool-report]
//! ```
//!
//! Drives `--requests` synthetic volumes through an overload-safe
//! server (`znn_serve::Server`): a bounded queue with an admission
//! watermark, batch workers sharing one warmed kernel-spectrum cache,
//! optional per-request deadlines (`--deadline-ms`), and an optional
//! degradation ladder (`--degrade` queue depth at which workers halve
//! their batch/block sizes before any load is shed). `--rate` paces
//! arrivals per second (0 = as fast as possible).
//!
//! At exit it prints p50/p99 service latency, the server's stats
//! report (submitted/shed/deadline-missed counts and the queue-depth
//! admission signal), and — with `--pool-report` — the per-size-class
//! pool occupancy dump shared with `znn-train`.
//!
//! With no `--spec`, a built-in max-filter demo spec is used (dense
//! serving requires the filtering form of the network; `maxpool`
//! specs are rejected by the blocked evaluator).

use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};
use znn_cli::parse_spec;
use znn_core::{DenseConfig, DenseNet};
use znn_serve::{Rejected, ServeConfig, Server};
use znn_tensor::{ops, Vec3};

const DEMO_SPEC: &str = "
# built-in demo: 2D boundary detector, filtering (dense-output) form
input width=1
conv width=4 kernel=1,3,3
transfer fn=relu
maxfilter window=1,2,2
conv width=1 kernel=1,3,3
transfer fn=logistic
";

struct Args {
    spec: Option<String>,
    input: Vec3,
    requests: usize,
    rate: f64,
    workers: usize,
    queue: usize,
    watermark: usize,
    batch: usize,
    block: Vec3,
    degrade: Option<usize>,
    deadline: Option<Duration>,
    pool_report: bool,
    plan: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: znn-serve [--spec FILE] [--in Z,Y,X] [--requests N] [--rate R]\n\
         \t[--workers N] [--queue N] [--watermark N] [--batch N]\n\
         \t[--block Z,Y,X] [--degrade N] [--deadline-ms N] [--pool-report]\n\
         \t[--plan auto|off]"
    );
    std::process::exit(2)
}

fn parse_shape(s: &str) -> Vec3 {
    let parts: Vec<usize> = s
        .split(',')
        .map(|p| p.trim().parse().unwrap_or_else(|_| usage()))
        .collect();
    match parts[..] {
        [n] => Vec3::cube(n),
        [y, x] => Vec3::flat(y, x),
        [z, y, x] => Vec3([z, y, x]),
        _ => usage(),
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        spec: None,
        input: Vec3::flat(48, 48),
        requests: 64,
        rate: 0.0,
        workers: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        queue: 8,
        watermark: 0,
        batch: 4,
        block: Vec3::flat(12, 12),
        degrade: None,
        deadline: None,
        pool_report: false,
        plan: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--spec" => args.spec = Some(val()),
            "--in" => args.input = parse_shape(&val()),
            "--requests" => args.requests = val().parse().unwrap_or_else(|_| usage()),
            "--rate" => args.rate = val().parse().unwrap_or_else(|_| usage()),
            "--workers" => args.workers = val().parse().unwrap_or_else(|_| usage()),
            "--queue" => args.queue = val().parse().unwrap_or_else(|_| usage()),
            "--watermark" => args.watermark = val().parse().unwrap_or_else(|_| usage()),
            "--batch" => args.batch = val().parse().unwrap_or_else(|_| usage()),
            "--block" => args.block = parse_shape(&val()),
            "--degrade" => args.degrade = Some(val().parse().unwrap_or_else(|_| usage())),
            "--deadline-ms" => {
                args.deadline = Some(Duration::from_millis(
                    val().parse().unwrap_or_else(|_| usage()),
                ))
            }
            "--pool-report" => args.pool_report = true,
            "--plan" => match val().as_str() {
                "auto" => args.plan = true,
                "off" => args.plan = false,
                _ => usage(),
            },
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn main() -> ExitCode {
    let args = parse_args();
    let text = match &args.spec {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => DEMO_SPEC.to_string(),
    };
    let graph = match parse_spec(&text) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "network: {} nodes, {} edges, {} parameters",
        graph.node_count(),
        graph.edge_count(),
        graph.parameter_count()
    );

    // --plan auto: price serving-side direct-vs-FFT choices through the
    // cost model instead of timing each geometry on first use
    let dense_cfg = DenseConfig {
        planner: args.plan.then(|| {
            Arc::new(znn_plan::Planner::new(znn_plan::PlanConfig::host()))
        }),
        ..DenseConfig::default()
    };
    let net = match DenseNet::new(graph, 42, dense_cfg) {
        Ok(n) => Arc::new(n),
        Err(e) => {
            eprintln!("cannot size network: {e}");
            return ExitCode::FAILURE;
        }
    };
    let out_shape = match net.output_shape_for(args.input) {
        Some(s) => s,
        None => {
            eprintln!(
                "input {} is smaller than the field of view {}",
                args.input,
                net.fov()
            );
            return ExitCode::FAILURE;
        }
    };
    println!(
        "serving dense volumes: input {} -> output {out_shape} (fov {})",
        args.input,
        net.fov()
    );
    net.warmup(args.input);

    let server = Server::start(
        Arc::clone(&net),
        ServeConfig {
            workers: args.workers,
            queue_capacity: args.queue,
            admission_watermark: args.watermark,
            max_batch: args.batch,
            block: args.block,
            degrade_watermark: args.degrade,
            ..ServeConfig::default()
        },
    );
    println!(
        "server: {} workers, queue {} (admission watermark {}), batch {}, block {}",
        args.workers,
        args.queue,
        server.watermark(),
        args.batch,
        args.block
    );

    let input = ops::random(args.input, 11);
    let interval = (args.rate > 0.0).then(|| Duration::from_secs_f64(1.0 / args.rate));
    let start = Instant::now();
    let mut pending = Vec::new();
    for _ in 0..args.requests {
        match server.submit(input.clone(), args.deadline) {
            Ok(ticket) => pending.push((Instant::now(), ticket)),
            Err(Rejected::Overloaded { .. }) => {}
            Err(e) => {
                eprintln!("submit failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        if let Some(d) = interval {
            std::thread::sleep(d);
        }
    }
    let mut latencies = Vec::new();
    for (submitted, ticket) in pending {
        let (result, done) = ticket.wait_timed();
        match result {
            Ok(_) | Err(Rejected::DeadlineExceeded { .. }) => {
                latencies.push((done - submitted).as_secs_f64());
            }
            Err(e) => {
                eprintln!("request failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let elapsed = start.elapsed().as_secs_f64();

    if !latencies.is_empty() {
        latencies.sort_by(f64::total_cmp);
        println!(
            "latency: p50 {:.2} ms, p99 {:.2} ms ({:.1} volumes/s)",
            percentile(&latencies, 0.50) * 1e3,
            percentile(&latencies, 0.99) * 1e3,
            latencies.len() as f64 / elapsed,
        );
    }
    print!("{}", server.report());
    server.shutdown();

    if args.pool_report {
        let pools = znn_alloc::PoolSet::global();
        println!("pool report (per size class, f32 units):");
        println!("  class  chunk_len     parked       hits     misses  hit-rate");
        for row in pools.class_report() {
            println!(
                "  {:>5}  {:>9}  {:>9}  {:>9}  {:>9}  {:>7.1}%",
                row.class,
                row.chunk_len,
                row.parked,
                row.hits,
                row.misses,
                row.hit_rate() * 100.0
            );
        }
    }
    ExitCode::SUCCESS
}
