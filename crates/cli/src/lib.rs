//! Config-file-driven network construction, in the spirit of the
//! original ZNN release's network specification files.
//!
//! A spec is a line-oriented text format:
//!
//! ```text
//! # layered 3D boundary detector
//! input width=1
//! conv width=8 kernel=3,3,3
//! transfer fn=relu
//! maxfilter window=2,2,2        # lock-step sparsity bump
//! conv width=8 kernel=3,3,3
//! transfer fn=relu
//! maxpool window=2,2,2          # pooling variant
//! conv width=1 kernel=3,3,3
//! transfer fn=logistic
//! ```
//!
//! Lines are `directive key=value ...`; `#` starts a comment; kernel
//! and window triples may be abbreviated to a single integer (isotropic)
//! or a pair (2D, leading axis 1). See [`parse_spec`].

#![warn(missing_docs)]

pub mod spec;

pub use spec::{parse_spec, SpecError};
